"""Ablations of the design choices DESIGN.md calls out.

Not paper artifacts — these quantify the modelled mechanisms in
isolation so their contribution to the reproduced shapes is auditable:

- flash vs naive attention traffic (engine modelling),
- KIVI's full-precision residual window on/off,
- GEAR's rank/outlier sweep (fidelity vs cost),
- sparse budget split (sink vs recent) sweep,
- paged block size vs fragmentation/copies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.compression.quant.gear import GEARCompressor
from repro.compression.quant.kivi import KIVICompressor
from repro.compression.sparse.streaming import StreamingLLMCompressor
from repro.experiments.common import (
    ExperimentResult,
    comp_spec,
    cost_model,
    functional_model,
)
from repro.kvcache.paged import PagedStore


def flash_vs_naive() -> ExperimentResult:
    """Prefill time ratio of eager (multi-pass) vs flash attention."""
    res = ExperimentResult(
        name="Ablation — flash vs naive attention traffic",
        description="FP16 prefill seconds under TRL (eager) vs TRL+FA.",
    )
    spec = comp_spec("fp16")
    rows = []
    for L in (512, 1024, 2048, 4096):
        eager = cost_model(engine="trl").prefill(4, L, spec).seconds
        flash = cost_model(engine="trl+fa").prefill(4, L, spec).seconds
        rows.append([L, f"{eager * 1e3:.1f}", f"{flash * 1e3:.1f}",
                     f"{eager / flash:.2f}x"])
    res.tables.append(
        format_table(["len", "eager (ms)", "flash (ms)", "ratio"], rows)
    )
    res.data["rows"] = rows
    return res


def residual_window(
    prompts: Sequence[Sequence[int]], answers: Sequence[Sequence[int]]
) -> ExperimentResult:
    """KIVI accuracy with and without the FP16 residual window."""
    from repro.datasets.metrics import token_f1
    from repro.model.generate import generate
    from repro.model.sampling import Sampler

    model = functional_model("llama")
    res = ExperimentResult(
        name="Ablation — KIVI residual window",
        description="2-bit KIVI accuracy with residual R in {0, 32, 128}.",
    )
    rows = []
    for r in (0, 32, 128):
        comp = KIVICompressor(bits=2, residual=r)
        out = generate(model, prompts, compressor=comp,
                       sampler=Sampler(greedy=True), max_new_tokens=24)
        f1 = float(np.mean([
            token_f1(s, a) for s, a in zip(out.sequences, answers)
        ]))
        rows.append([r, f"{f1:.3f}"])
    res.tables.append(format_table(["residual R", "token F1"], rows))
    res.data["rows"] = rows
    return res


def gear_rank_sweep(
    prompts: Sequence[Sequence[int]], answers: Sequence[Sequence[int]]
) -> ExperimentResult:
    """GEAR fidelity as rank/outlier ratios grow (2-bit base codec)."""
    from repro.datasets.metrics import token_f1
    from repro.model.generate import generate
    from repro.model.sampling import Sampler

    model = functional_model("llama")
    res = ExperimentResult(
        name="Ablation — GEAR error-correction sweep",
        description="2-bit GEAR accuracy vs rank/outlier ratios.",
    )
    rows = []
    for rr, orat in ((0.0, 0.0), (0.02, 0.0), (0.0, 0.02), (0.02, 0.02), (0.08, 0.08)):
        comp = GEARCompressor(bits=2, rank_ratio=rr, outlier_ratio=orat)
        out = generate(model, prompts, compressor=comp,
                       sampler=Sampler(greedy=True), max_new_tokens=24)
        f1 = float(np.mean([
            token_f1(s, a) for s, a in zip(out.sequences, answers)
        ]))
        rows.append([rr, orat, f"{f1:.3f}"])
    res.tables.append(format_table(["rank ratio", "outlier ratio", "token F1"], rows))
    res.data["rows"] = rows
    return res


def budget_split(
    prompts: Sequence[Sequence[int]], answers: Sequence[Sequence[int]]
) -> ExperimentResult:
    """StreamingLLM sink/recent split at a fixed total budget of 512."""
    from repro.datasets.metrics import token_f1
    from repro.model.generate import generate
    from repro.model.sampling import Sampler

    model = functional_model("llama")
    res = ExperimentResult(
        name="Ablation — sparse budget split (sink vs recent)",
        description="StreamingLLM accuracy across sink sizes, budget 512.",
    )
    rows = []
    for sink in (0, 16, 64, 256):
        comp = StreamingLLMCompressor(sink_size=sink, recent_size=512 - sink)
        out = generate(model, prompts, compressor=comp,
                       sampler=Sampler(greedy=True), max_new_tokens=24)
        f1 = float(np.mean([
            token_f1(s, a) for s, a in zip(out.sequences, answers)
        ]))
        rows.append([sink, 512 - sink, f"{f1:.3f}"])
    res.tables.append(format_table(["sink", "recent", "token F1"], rows))
    res.data["rows"] = rows
    return res


def paged_block_size() -> ExperimentResult:
    """Fragmentation vs block size under an evicting workload."""
    res = ExperimentResult(
        name="Ablation — paged block size",
        description=(
            "Internal fragmentation after sparse eviction punches holes "
            "into blocks, across block sizes (capacity 64k tokens)."
        ),
    )
    rng = np.random.default_rng(0)
    rows = []
    for bs in (8, 16, 32, 64, 128):
        store = PagedStore(capacity_tokens=65536, block_size=bs)
        for i in range(24):
            store.add_sequence(f"s{i}", int(rng.integers(256, 1024)))
        # evict a random two-thirds of each sequence (H2O-style holes)
        for i in range(24):
            n = store._seqs[f"s{i}"].length
            drop = rng.choice(n, size=2 * n // 3, replace=False)
            store.evict(f"s{i}", [int(x) for x in drop])
        st = store.stats()
        rows.append(
            [bs, st.allocated_tokens, st.live_tokens,
             f"{100 * st.internal_fragmentation:.1f}%"]
        )
    res.tables.append(
        format_table(["block", "allocated", "live", "fragmentation"], rows)
    )
    res.data["rows"] = rows
    return res
