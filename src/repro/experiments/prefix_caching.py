"""Prefix caching: TTFT and goodput on a multi-turn workload.

The paper prices prefill as the dominant TTFT cost; production engines
(vLLM prefix caching, SGLang RadixAttention) avoid re-prefilling the
KV of tokens the instance has already seen — a multi-turn
conversation's growing history, or a system prompt shared across all
conversations.  This experiment replays a ShareGPT-style multi-turn
stream (every turn's prompt = shared system prompt + accumulated
history + new user message) through the serving simulator:

- **off vs on** — the same stream on one FP16 instance without and
  with a :class:`~repro.serving.prefix.PrefixIndex`: with caching, each
  turn re-prefills only its new suffix and mean TTFT collapses.
- **compression friction** — the same index attached to a KIVI
  instance yields *zero* hits: quantized blocks are unshareable
  (Section 3.1.2), so compressed deployments forfeit prefix reuse.
- **routing** — a 2-instance FP16 fleet under load-balance vs
  cache-affinity (``prefix``) online routing: load balancing scatters
  a conversation's turns across instances, each with a cold cache,
  while affinity routing keeps them where their KV lives.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.common import ExperimentResult, comp_spec, cost_model
from repro.serving import (
    PrefixIndex,
    RoutedRequest,
    Router,
    RoutingPolicy,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Trace,
)

#: shared system prompt / per-turn user message / response (tokens)
SYS_TOKENS = 512
USER_TOKENS = 128
RESP_TOKENS = 128
#: conversations and turns per conversation
N_CONVERSATIONS = 6
N_TURNS = 3
#: think time between a response and the user's next turn (s)
TURN_GAP = 8.0
#: stagger between conversation starts (s)
CONV_GAP = 0.7
#: tighter timing for the fleet comparison, keeping both instances busy
ROUTED_TURN_GAP = 1.5
ROUTED_CONV_GAP = 0.25


def _conversation_prompts(conv: int, shared_sys: bool = True) -> List[List[int]]:
    """Token ids of each turn's prompt for one conversation.

    Turn ``t``'s prompt is the system prompt plus every earlier user
    message and model response — the ShareGPT accumulation pattern that
    makes each turn's prefix exactly the previous turn's full context.
    ``shared_sys=False`` gives each conversation a distinct system
    prompt, so reuse can only come from that conversation's own history
    (isolates the routing comparison from cross-conversation sharing).
    """
    base = 1_000 if shared_sys else 1_000_000 + conv * 10_000
    sys_ids = list(range(base, base + SYS_TOKENS))
    history = list(sys_ids)
    prompts = []
    for t in range(N_TURNS):
        user = [
            100_000 + conv * 10_000 + t * 1_000 + i for i in range(USER_TOKENS)
        ]
        prompt = history + user
        prompts.append(prompt)
        resp = [
            500_000 + conv * 10_000 + t * 1_000 + i for i in range(RESP_TOKENS)
        ]
        history = prompt + resp
    return prompts


def multi_turn_stream() -> List[ServingRequest]:
    """The multi-turn stream as concrete per-instance requests."""
    reqs = []
    for conv in range(N_CONVERSATIONS):
        for t, prompt in enumerate(_conversation_prompts(conv)):
            reqs.append(
                ServingRequest(
                    request_id=f"c{conv}t{t}",
                    arrival=conv * CONV_GAP + t * TURN_GAP,
                    prompt_len=len(prompt),
                    response_len=RESP_TOKENS,
                    token_ids=tuple(prompt),
                )
            )
    return reqs


def multi_turn_routed_stream() -> List[RoutedRequest]:
    """Routable multi-turn stream with per-conversation system prompts.

    Distinct system prompts make conversation affinity the only source
    of prefix hits: a turn routed away from its conversation's home
    instance finds nothing cached there.  Think times and response
    lengths are jittered (seeded) so the arrival order varies between
    rounds and the fleet stays busy — under load, least-loaded routing
    scatters a conversation's turns across instances while affinity
    routing keeps them home.
    """
    rng = np.random.default_rng(7)
    reqs = []
    for conv in range(N_CONVERSATIONS):
        at = conv * ROUTED_CONV_GAP
        for t, prompt in enumerate(_conversation_prompts(conv, shared_sys=False)):
            resp = int(rng.integers(64, 192))
            reqs.append(
                RoutedRequest(
                    request_id=f"c{conv}t{t}",
                    arrival=at,
                    prompt_len=len(prompt),
                    intended_len=resp,
                    lengths_by_algo={"fp16": resp},
                    token_ids=tuple(prompt),
                )
            )
            at += ROUTED_TURN_GAP * float(rng.uniform(0.6, 1.8))
    return reqs


def _serve_single(comp_name: str, prefix: bool):
    """One instance serving the stream; returns (result, metrics)."""
    inst = ServerInstance(
        cost_model(),
        comp_spec(comp_name),
        prefix_cache=PrefixIndex() if prefix else None,
    )
    trace = Trace()
    res = inst.run(multi_turn_stream(), trace=trace)
    return res, StepMetrics.from_trace(trace)


def _single_rows():
    rows, raw = [], []
    for label, comp_name, prefix in (
        ("fp16 / off", "fp16", False),
        ("fp16 / on", "fp16", True),
        ("kivi-4 / on", "kivi-4", True),
    ):
        res, m = _serve_single(comp_name, prefix)
        ttft = res.ttft
        rows.append(
            [
                label,
                f"{ttft.mean():.4f}",
                f"{np.percentile(ttft, 99):.4f}",
                f"{m.prefix_hit_rate:.2f}",
                f"{m.prefix_cached_tokens}",
                f"{m.prefix_saved_seconds:.3f}",
                f"{m.goodput:.1f}",
            ]
        )
        raw.append(
            {
                "config": label,
                "comp": comp_name,
                "prefix": prefix,
                "mean_ttft": float(ttft.mean()),
                "p99_ttft": float(np.percentile(ttft, 99)),
                "prefix_hits": m.prefix_hits,
                "prefix_hit_rate": m.prefix_hit_rate,
                "prefix_cached_tokens": m.prefix_cached_tokens,
                "prefix_saved_seconds": m.prefix_saved_seconds,
                "goodput": m.goodput,
            }
        )
    return rows, raw


def _routing_rows():
    rows, raw = [], []
    for policy in (RoutingPolicy.LOAD_BALANCE, RoutingPolicy.PREFIX):
        instances = [
            ServerInstance(
                cost_model(), comp_spec("fp16"), prefix_cache=PrefixIndex()
            )
            for _ in range(2)
        ]
        router = Router(instances, ["fp16", "fp16"], policy)
        res = router.serve_online(multi_turn_routed_stream())
        served = [r for r in res.all_requests() if not r.rejected]
        ttft = np.array([r.ttft for r in served])
        hit_rate = float(np.mean([r.cached_prefix > 0 for r in served]))
        s = res.latency_summary()
        rows.append(
            [
                policy.value,
                f"{ttft.mean():.4f}",
                f"{np.percentile(ttft, 99):.4f}",
                f"{hit_rate:.2f}",
                f"{s.goodput:.1f}",
            ]
        )
        raw.append(
            {
                "routing": policy.value,
                "mean_ttft": float(ttft.mean()),
                "prefix_hit_rate": hit_rate,
                "goodput": s.goodput,
            }
        )
    return rows, raw


def run(scale: Optional[float] = None) -> ExperimentResult:
    """Prefix caching off/on, compression friction, and affinity routing."""
    single_rows, single_raw = _single_rows()
    routing_rows, routing_raw = _routing_rows()
    result = ExperimentResult(
        name="Prefix caching — multi-turn TTFT and cache-affinity routing",
        description=(
            "LLaMA-7B/A6000/LMDeploy.  Workload: "
            f"{N_CONVERSATIONS} conversations x {N_TURNS} turns, each "
            f"turn's prompt = {SYS_TOKENS}-token shared system prompt + "
            f"accumulated history + {USER_TOKENS}-token user message "
            f"({RESP_TOKENS}-token responses, {TURN_GAP:.0f}s think "
            "time).  With the prefix index on, later turns re-prefill "
            "only their new suffix; the KIVI row shows compression "
            "breaking shareability (zero hits, Section 3.1.2); the "
            "fleet table compares load-balance routing (turns scatter "
            "across cold caches) with cache-affinity routing."
        ),
    )
    result.tables.append(
        format_table(
            ["config", "mean TTFT (s)", "p99 TTFT (s)", "hit rate",
             "cached tok", "saved (s)", "goodput (tok/s)"],
            single_rows,
            title="Single instance, prefix caching off/on:",
        )
    )
    result.tables.append(
        format_table(
            ["routing", "mean TTFT (s)", "p99 TTFT (s)", "hit rate",
             "goodput (tok/s)"],
            routing_rows,
            title="2-instance FP16 fleet, online routing:",
        )
    )
    result.data["raw"] = single_raw
    result.data["routing_raw"] = routing_raw
    return result
