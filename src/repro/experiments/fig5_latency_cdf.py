"""Figure 5 (and appendix Fig. 16): end-to-end latency CDFs.

Per-sample end-to-end latency at batch size one: prefill time plus the
measured response length (under each algorithm) times that algorithm's
decode step time.  Combining throughput with the *length distribution
shift* is the paper's Observation 4 — compression's latency benefit
largely evaporates, and GEAR's tail gets worse.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.config import ExperimentScale, current_scale
from repro.experiments.common import (
    ALGOS,
    ALL_ALGOS,
    ExperimentResult,
    comp_spec,
    cost_model,
)
from repro.experiments.genruns import sharegpt_requests, sharegpt_run
from repro.serving.metrics import LatencySummary, cdf


def e2e_latencies(
    scale: ExperimentScale,
    model: str = "llama",
    algos: Sequence[str] = ALL_ALGOS,
    arch: str = "llama-7b",
    gpu: str = "a6000",
    engine: str = "lmdeploy",
) -> Dict[str, np.ndarray]:
    """algo -> per-request E2E latency (seconds) at batch size 1."""
    reqs = sharegpt_requests(scale)
    m = cost_model(arch, gpu, engine)
    out: Dict[str, np.ndarray] = {}
    for algo in algos:
        spec = comp_spec(algo)
        lens = sharegpt_run(scale, algo, 1.0, model).lengths
        lats = np.zeros(len(reqs))
        for i, r in enumerate(reqs):
            prefill = m.prefill(1, r.prompt_len, spec).seconds
            # decode step priced at the mid-generation KV length
            kv = r.prompt_len + max(1, int(lens[i])) // 2
            step = m.decode_step(1, kv, spec).seconds
            lats[i] = prefill + max(0, int(lens[i]) - 1) * step
        out[algo] = lats
    return out


def mean_tbot(
    scale: ExperimentScale,
    model: str = "llama",
    algos: Sequence[str] = ALL_ALGOS,
    arch: str = "llama-7b",
    gpu: str = "a6000",
    engine: str = "lmdeploy",
) -> Dict[str, float]:
    """algo -> mean time between output tokens (seconds) at batch 1."""
    reqs = sharegpt_requests(scale)
    m = cost_model(arch, gpu, engine)
    out: Dict[str, float] = {}
    for algo in algos:
        spec = comp_spec(algo)
        lens = sharegpt_run(scale, algo, 1.0, model).lengths
        steps = [
            m.decode_step(
                1, r.prompt_len + max(1, int(lens[i])) // 2, spec
            ).seconds
            for i, r in enumerate(reqs)
        ]
        out[algo] = float(np.mean(steps))
    return out


def run(
    scale: ExperimentScale = None, model: str = "llama"
) -> ExperimentResult:
    """Reproduce Figure 5."""
    scale = scale or current_scale()
    lats = e2e_latencies(scale, model)
    tbots = mean_tbot(scale, model)
    res = ExperimentResult(
        name=f"Figure 5 — end-to-end latency CDF ({model})",
        description=(
            "Per-sample E2E latency at batch 1 combining each "
            "algorithm's decode speed with its own response lengths."
        ),
        data={"latencies": lats, "tbot": tbots},
    )
    rows = []
    for algo, arr in lats.items():
        s = LatencySummary.from_samples(arr)
        rows.append(
            [
                algo,
                f"{s.mean:.2f}", f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.p99:.2f}",
                f"{tbots[algo] * 1e3:.1f}",
            ]
        )
    res.tables.append(
        format_table(
            ["algo", "mean (s)", "p50", "p90", "p99", "tbot (ms)"],
            rows,
            title="E2E latency summary:",
        )
    )
    xs, ys = cdf(lats["fp16"], n_points=12)
    res.data["fp16_cdf"] = (xs, ys)
    return res
