"""Figure 4 (and appendix Fig. 15): length-difference distributions.

For each algorithm at several compression ratios (quantizer bits,
sparse cache budgets), the distribution of the response-length
difference D plus its kernel density estimate.  Higher compression
ratios flatten the distribution and push mass toward lengthy responses
(negative D) — the paper's Observation 3.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.length_stats import (
    d_histogram,
    d_kde,
    flatness,
    length_difference,
)
from repro.analysis.reporting import format_series, format_table
from repro.core.config import ExperimentScale, current_scale
from repro.experiments.common import ExperimentResult
from repro.experiments.genruns import sharegpt_run

#: the compression-ratio sweeps of Figure 4
SWEEPS: Dict[str, Tuple[str, ...]] = {
    "kivi": ("kivi-8", "kivi-4", "kivi-2"),
    "gear": ("gear-8", "gear-4", "gear-2"),
    "h2o": ("h2o-1024", "h2o-512", "h2o-256"),
    "stream": ("stream-1024", "stream-512", "stream-256"),
}


def d_distributions(
    scale: ExperimentScale, model: str = "llama",
    sweeps: Dict[str, Tuple[str, ...]] = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """algo-config -> D sample, for every sweep member."""
    sweeps = sweeps or SWEEPS
    base = sharegpt_run(scale, "fp16", 1.0, model).lengths
    out: Dict[str, Dict[str, np.ndarray]] = {}
    for family, configs in sweeps.items():
        out[family] = {}
        for cfg in configs:
            lens = sharegpt_run(scale, cfg, 1.0, model).lengths
            out[family][cfg] = length_difference(base, lens)
    return out


def run(
    scale: ExperimentScale = None, model: str = "llama"
) -> ExperimentResult:
    """Reproduce Figure 4."""
    scale = scale or current_scale()
    dists = d_distributions(scale, model)
    res = ExperimentResult(
        name=f"Figure 4 — length-difference distributions ({model})",
        description=(
            "D = (L_un - L_cs)/L_un per compression configuration; "
            "negative D = longer responses.  'flatness' is the spread "
            "of the distribution (std of clipped D)."
        ),
        data={"d": dists},
    )
    for family, by_cfg in dists.items():
        rows = []
        for cfg, d in by_cfg.items():
            rows.append(
                [
                    cfg,
                    f"{float(np.mean(d)):+.3f}",
                    f"{flatness(d):.3f}",
                    f"{100 * float(np.mean(d <= -0.5)):.1f}%",
                ]
            )
        res.tables.append(
            format_table(
                ["config", "mean D", "flatness", "% much longer"],
                rows,
                title=f"{family} sweep (higher compression lower row):",
            )
        )
        # KDE series of the most aggressive configuration
        cfg, d = list(by_cfg.items())[-1]
        xs, ys = d_kde(d, grid=24)
        res.tables.append(format_series(f"KDE {cfg}", xs, ys))
    return res
