"""Figure 1: throughput analysis of LLaMA-7B on A6000.

Panels:
- (a-b) FP16 decoding throughput on TRL, TRL+FlashAttention and
  LMDeploy across batch sizes at two KV lengths.
- (c-d) StreamingLLM decode speedup over FP16 on TRL vs LMDeploy.
- (e-h) prefill throughput of each algorithm across prompt lengths for
  several batch sizes.
- (i-l) decoding throughput of each algorithm across KV lengths,
  including the OOM cells quantization hits at 8192 (Fig. 1(l)).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.reporting import format_series, format_table
from repro.experiments.common import (
    ALGOS,
    ALL_ALGOS,
    ExperimentResult,
    comp_spec,
    comp_specs,
    cost_model,
)

BATCHES = (1, 4, 16, 64)
DECODE_LENS = (256, 1024, 4096, 8192)
PREFILL_LENS = (256, 1024, 2048, 4096)
ENGINE_NAMES = ("trl", "trl+fa", "lmdeploy")


def fp16_decode_by_engine(
    arch: str = "llama-7b", gpu: str = "a6000",
    batches: Sequence[int] = BATCHES, kv_len: int = 1024,
) -> Dict[str, List[float]]:
    """Panel (a-b) series: engine -> throughput per batch size."""
    spec = comp_spec("fp16")
    return {
        eng: [
            cost_model(arch, gpu, eng).decode_throughput(b, kv_len, spec)
            for b in batches
        ]
        for eng in ENGINE_NAMES
    }


def algo_speedup_by_engine(
    algo: str = "stream-512", arch: str = "llama-7b", gpu: str = "a6000",
    batches: Sequence[int] = BATCHES, kv_len: int = 1024,
) -> Dict[str, List[float]]:
    """Panel (c-d) series: engine -> decode speedup over FP16."""
    fp16 = comp_spec("fp16")
    spec = comp_spec(algo)
    out: Dict[str, List[float]] = {}
    for eng in ("trl", "lmdeploy"):
        m = cost_model(arch, gpu, eng)
        series = []
        for b in batches:
            base = m.decode_throughput(b, kv_len, fp16)
            comp = m.decode_throughput(b, kv_len, spec)
            series.append(comp / base if base else float("nan"))
        out[eng] = series
    return out


def throughput_grid(
    stage: str,
    arch: str = "llama-7b",
    gpu: str = "a6000",
    engine: str = "lmdeploy",
    batches: Sequence[int] = BATCHES,
    lengths: Sequence[int] = DECODE_LENS,
    algos: Sequence[str] = ALL_ALGOS,
    tp: int = 1,
) -> Dict[str, Dict[tuple, float]]:
    """Panels (e-l): algo -> {(batch, length): tokens/s, 0.0 = OOM}."""
    m = cost_model(arch, gpu, engine, tp)
    specs = comp_specs(algos)
    out: Dict[str, Dict[tuple, float]] = {a: {} for a in algos}
    for a, spec in specs.items():
        for b in batches:
            for L in lengths:
                if stage == "prefill":
                    v = m.prefill_throughput(b, L, spec)
                else:
                    v = m.decode_throughput(b, L, spec)
                out[a][(b, L)] = v
    return out


def run(arch: str = "llama-7b", gpu: str = "a6000") -> ExperimentResult:
    """Reproduce all Figure 1 panels."""
    res = ExperimentResult(
        name=f"Figure 1 — throughput analysis ({arch}, {gpu.upper()})",
        description=(
            "FP16 engine comparison, StreamingLLM speedups, and per-"
            "algorithm prefill/decode throughput grids (0 tok/s = OOM)."
        ),
    )
    for kv in (512, 2048):
        series = fp16_decode_by_engine(arch, gpu, kv_len=kv)
        res.data[f"fp16_decode_kv{kv}"] = series
        res.tables.append(
            "\n".join(
                [f"(a-b) FP16 decode throughput, KV len {kv}:"]
                + [format_series(e, BATCHES, s) for e, s in series.items()]
            )
        )
    for kv in (1024, 4096):
        series = algo_speedup_by_engine("stream-512", arch, gpu, kv_len=kv)
        res.data[f"stream_speedup_kv{kv}"] = series
        res.tables.append(
            "\n".join(
                [f"(c-d) StreamingLLM decode speedup, KV len {kv}:"]
                + [format_series(e, BATCHES, s) for e, s in series.items()]
            )
        )
    for stage, lens in (("prefill", PREFILL_LENS), ("decode", DECODE_LENS)):
        grid = throughput_grid(stage, arch, gpu, lengths=lens)
        res.data[f"{stage}_grid"] = grid
        rows = []
        for b in BATCHES:
            for L in lens:
                rows.append(
                    [b, L] + [grid[a][(b, L)] for a in ALL_ALGOS]
                )
        res.tables.append(
            format_table(
                ["batch", "len"] + list(ALL_ALGOS),
                rows,
                title=f"({'e-h' if stage == 'prefill' else 'i-l'}) "
                f"{stage} throughput (tok/s, 0=OOM):",
                precision=0,
            )
        )
    return res
