"""Figure 3: execution time of the attention layer per algorithm.

(a) prefill attention time vs prompt length — GEAR and H2O pay for
error correction and score materialization; (b) decode attention time
vs KV length — sparse methods stay flat because their cache is capped.
Attention time includes the algorithm's compression work, as the
paper's measurement does.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.reporting import format_series
from repro.experiments.common import (
    ALL_ALGOS,
    ExperimentResult,
    comp_specs,
    cost_model,
)

PREFILL_LENS = (256, 512, 1024, 2048, 4096)
DECODE_LENS = (256, 512, 1024, 2048, 4096, 8192)


def attention_time_series(
    stage: str,
    lengths: Sequence[int],
    batch: int = 4,
    arch: str = "llama-7b",
    gpu: str = "a6000",
    engine: str = "lmdeploy",
    algos: Sequence[str] = ALL_ALGOS,
) -> Dict[str, List[float]]:
    """algo -> attention seconds per length (NaN on OOM)."""
    m = cost_model(arch, gpu, engine)
    out: Dict[str, List[float]] = {}
    for a, spec in comp_specs(algos).items():
        series = []
        for L in lengths:
            cost = (
                m.prefill(batch, L, spec)
                if stage == "prefill"
                else m.decode_step(batch, L, spec)
            )
            series.append(
                float("nan") if cost.oom else cost.attention_seconds
            )
        out[a] = series
    return out


def run(batch: int = 4) -> ExperimentResult:
    """Reproduce Figure 3 (a) and (b)."""
    res = ExperimentResult(
        name="Figure 3 — attention-layer execution time",
        description=(
            "Attention + compression time (ms) across lengths; batch "
            f"{batch}, LLaMA-7B on A6000 under LMDeploy."
        ),
    )
    for stage, lens in (("prefill", PREFILL_LENS), ("decode", DECODE_LENS)):
        series = attention_time_series(stage, lens, batch)
        res.data[stage] = series
        res.tables.append(
            "\n".join(
                [f"({'a' if stage == 'prefill' else 'b'}) {stage} "
                 "attention time (ms) vs length:"]
                + [
                    format_series(a, lens, [1e3 * v for v in s])
                    for a, s in series.items()
                ]
            )
        )
    return res
