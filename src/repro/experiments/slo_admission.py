"""SLO-aware admission: attainment under interference (ROADMAP item).

The paper's request router (Section 6, Table 8) exists to keep latency
acceptable under compression-induced length shift, but production
stacks schedule against *per-request* TTFT/TBOT targets, not arrival
order.  This experiment replays the interference scenario — a salvo of
long-prompt background requests landing just before short interactive
requests with tight TTFT deadlines — under each scheduler policy and
reports SLO attainment and goodput: FCFS serves the background salvo
first (it arrived first) and blows every interactive deadline, while
the ``slo`` policy (earliest-deadline-first by live slack) admits the
urgent requests ahead of the slack-rich background at the same offered
load.  A second table routes a mixed-deadline stream across a
two-instance fleet (FP16 + compressed) online, comparing load-balance
routing with the SLO-slack routing mode.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analysis.reporting import format_table
from repro.compression.base import NoCompression
from repro.compression.registry import create
from repro.experiments.common import ExperimentResult, cost_model
from repro.serving import (
    RoutedRequest,
    Router,
    RoutingPolicy,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Trace,
    make_policy,
)

#: scheduler policies compared at equal offered load
POLICIES = ("fcfs", "shortest", "slo")

#: loose background TTFT deadline / tight interactive TTFT deadline (s)
BACKGROUND_TTFT = 60.0
INTERACTIVE_TTFT = 1.0
#: interactive per-token target (s/token)
INTERACTIVE_TBOT = 0.5
#: TTFT deadline for the light requests of the fleet-routing stream (s)
ROUTED_TTFT = 0.4


def slo_interference_stream(
    n_background: int = 8,
    n_interactive: int = 8,
    bg_prompt: int = 3072,
    bg_resp: int = 128,
    ia_prompt: int = 256,
    ia_resp: int = 64,
    ia_start: float = 0.2,
    ia_spacing: float = 0.05,
) -> List[ServingRequest]:
    """A background salvo at t=0, then tightly-deadlined short requests.

    All background requests arrive before any interactive one, so an
    arrival-order scheduler must serve every long prefill first; a
    slack-aware scheduler reorders.
    """
    reqs = [
        ServingRequest(
            f"bg{i}", 0.0, bg_prompt, bg_resp,
            ttft_deadline=BACKGROUND_TTFT,
        )
        for i in range(n_background)
    ]
    reqs += [
        ServingRequest(
            f"ia{i}", ia_start + i * ia_spacing, ia_prompt, ia_resp,
            ttft_deadline=INTERACTIVE_TTFT, tbot_target=INTERACTIVE_TBOT,
        )
        for i in range(n_interactive)
    ]
    return reqs


def routed_mixed_stream(n: int = 48, seed: int = 5) -> List[RoutedRequest]:
    """Alternating heavy deadline-free and light tightly-deadlined
    arrivals for the fleet-routing comparison."""
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(0.05, size=n))
    reqs = []
    for i in range(n):
        heavy = i % 2 == 0
        prompt = int(rng.integers(2048, 3072)) if heavy else int(
            rng.integers(128, 384)
        )
        resp = int(rng.integers(64, 160))
        reqs.append(
            RoutedRequest(
                request_id=f"m{i}",
                arrival=float(arrivals[i]),
                prompt_len=prompt,
                intended_len=resp,
                lengths_by_algo={"fp16": resp, "stream-512": resp},
                ttft_deadline=None if heavy else ROUTED_TTFT,
            )
        )
    return reqs


def _policy_rows(cm, comp):
    rows, raw = [], []
    for policy in POLICIES:
        inst = ServerInstance(cm, comp, scheduler=make_policy(policy))
        trace = Trace()
        res = inst.run(slo_interference_stream(), trace=trace)
        m = StepMetrics.from_trace(trace)
        interactive = [
            r for r in res.completed if r.request_id.startswith("ia")
        ]
        background = [
            r for r in res.completed if r.request_id.startswith("bg")
        ]
        rows.append(
            [
                policy,
                f"{m.ttft_attainment:.2f}",
                f"{m.tbot_attainment:.2f}",
                f"{m.goodput:.1f}",
                f"{np.mean([r.ttft for r in interactive]):.3f}",
                f"{np.mean([r.ttft for r in background]):.3f}",
                f"{res.mean_e2e():.2f}",
                f"{res.percentile_e2e(99):.2f}",
            ]
        )
        raw.append(
            {
                "policy": policy,
                "ttft_attainment": m.ttft_attainment,
                "tbot_attainment": m.tbot_attainment,
                "goodput": m.goodput,
                "mean_e2e": res.mean_e2e(),
            }
        )
    return rows, raw


def _routing_rows():
    rows, raw = [], []
    for policy in (RoutingPolicy.LOAD_BALANCE, RoutingPolicy.SLO):
        # both instances schedule by slack, so the comparison isolates
        # the *routing* decision
        instances = [
            ServerInstance(
                cost_model(), NoCompression().cost_spec(),
                scheduler=make_policy("slo"),
            ),
            ServerInstance(
                cost_model(), create("stream-512").cost_spec(),
                scheduler=make_policy("slo"),
            ),
        ]
        router = Router(instances, ["fp16", "stream-512"], policy)
        res = router.serve_online(routed_mixed_stream())
        s = res.latency_summary()
        rows.append(
            [
                policy.value,
                "-" if s.ttft_attainment is None else f"{s.ttft_attainment:.2f}",
                f"{s.goodput:.1f}",
                f"{s.mean:.2f}",
                f"{s.p99:.2f}",
            ]
        )
        raw.append(
            {
                "routing": policy.value,
                "ttft_attainment": s.ttft_attainment,
                "goodput": s.goodput,
            }
        )
    return rows, raw


def run(scale=None) -> ExperimentResult:
    """Compare fcfs / shortest / slo scheduling and slo routing."""
    comp = NoCompression().cost_spec()
    cm = cost_model()
    policy_rows, policy_raw = _policy_rows(cm, comp)
    routing_rows, routing_raw = _routing_rows()
    result = ExperimentResult(
        name="SLO-aware admission — attainment under interference",
        description=(
            "LLaMA-7B/A6000/LMDeploy.  Interference: 8 background "
            f"requests (3072/128 tokens, {BACKGROUND_TTFT:.0f}s TTFT "
            "deadline) arrive at t=0, then 8 interactive requests "
            f"(256/64 tokens, {INTERACTIVE_TTFT:.1f}s TTFT deadline) "
            "from t=0.2s.  FCFS admits in arrival order, so every "
            "interactive request queues behind the full salvo of long "
            "prefills and misses its deadline; the slo policy "
            "(earliest-deadline-first by live slack) admits urgent "
            "requests first at the same offered load.  Routing: a "
            "mixed-deadline stream over an FP16 + Stream-512 fleet, "
            "load-balance vs SLO-slack online routing."
        ),
    )
    result.tables.append(
        format_table(
            ["policy", "ttft att", "tbot att", "goodput (tok/s)",
             "ia TTFT (s)", "bg TTFT (s)", "mean e2e", "p99 e2e"],
            policy_rows,
            title="Single instance (8 background + 8 interactive):",
        )
    )
    result.tables.append(
        format_table(
            ["routing", "ttft att", "goodput (tok/s)", "mean e2e", "p99 e2e"],
            routing_rows,
            title="2-instance fleet, online routing (mixed deadlines):",
        )
    )
    result.data["raw"] = policy_raw
    result.data["routing_raw"] = routing_raw
    return result
