"""One module per paper table/figure; see DESIGN.md for the index."""

from repro.experiments import (
    ablations,
    appendix,
    chunked_prefill,
    fig1_throughput,
    fig2_h800,
    fig3_attention_time,
    fig4_length_dist,
    fig5_latency_cdf,
    fig6_negative_threshold,
    fig7_negative_tasks,
    slo_admission,
    table3_tp,
    table4_semantic,
    table5_length_ratio,
    table6_predictors,
    table7_negative_bench,
    table8_router,
)
from repro.experiments.common import (
    ALGOS,
    ALL_ALGOS,
    ExperimentResult,
)

__all__ = [
    "ablations",
    "appendix",
    "chunked_prefill",
    "fig1_throughput",
    "fig2_h800",
    "fig3_attention_time",
    "fig4_length_dist",
    "fig5_latency_cdf",
    "fig6_negative_threshold",
    "fig7_negative_tasks",
    "slo_admission",
    "table3_tp",
    "table4_semantic",
    "table5_length_ratio",
    "table6_predictors",
    "table7_negative_bench",
    "table8_router",
    "ALGOS",
    "ALL_ALGOS",
    "ExperimentResult",
]
