"""Compression-aware routing in the live serving loop.

The quality-vs-goodput frontier experiment the "Benchmarking KV-Cache
Optimizations across Task Quality and System Performance" framing asks
for: a mixed fleet (one FP16 instance + three compressed) served by the
``compression`` routing policy, swept over the risk threshold with the
verify-and-fallback path off and on, against two static baselines
(4x FP16 and 4x KIVI under load-balance routing).

Workload model
--------------
Every request is one sample of a synthetic evaluation set scored the
way :class:`~repro.tools.negative_sampler.NegativeSampleAnalysis`
expects: a baseline (FP16) score plus one score per compression
algorithm.  Four sample classes set how many of the fleet's three
compressed algorithms degrade the sample — ``safe`` (none), ``fragile``
(one), ``risky`` (two), ``negative`` (all three, the paper's Algorithm 1
negatives).  ``NegativeSampleAnalysis.risk_scores`` turns those scores
into the graded per-request risk the router consumes, so the policy is
exercised end to end through the paper's own tooling rather than a
hand-fed label.

Serving a degraded sample on a compressed instance shows up twice:

- **quality**: the request's quality is its score ratio under the
  serving algorithm (1.0 on FP16 or after a verified fallback) —
  Section 4.3's accuracy collapse on negative samples.
- **length**: the compressed response *contracts* to the score ratio of
  its FP16 length (degenerate output terminates early), so a lossy
  fleet also generates fewer useful tokens — which is exactly what the
  goodput axis measures.

All requests carry a TTFT deadline, so goodput = SLO-attained tokens
per second separates fleets that queue from fleets that keep up.
Arrivals are Poisson at a rate that puts a 4x FP16 fleet just past
saturation (the regime where compression pays).

The frontier claim (pinned by ``benchmarks/test_serving_router.py``):
some swept ``compression`` point dominates the static FP16 fleet
(same quality = 1.0, more goodput) and some point dominates the static
compressed fleet (at least its quality, more goodput).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ExperimentResult,
    comp_spec,
    comp_specs,
    cost_model,
)
from repro.serving import (
    PrefixIndex,
    RoutedRequest,
    Router,
    RoutingPolicy,
    ServerInstance,
    StepMetrics,
    Trace,
)
from repro.tools.negative_sampler import NegativeSampleAnalysis, ScoredSample

SEED = 11
N_REQUESTS = 96
SYS_TOKENS = 256          # shared system prompt (prefix-cacheable)
USER_TOKENS = (384, 896)  # unique per-request suffix range (long-context
                          # regime: where KV compression actually pays)
RESP_TOKENS = (96, 224)   # FP16 response length range
TTFT_SLO = 2.0            # seconds, on every request
MAX_BATCH = 8             # per-instance concurrency (queues form past it)
TARGET_UTILIZATION = 1.05  # 4x FP16 fleet just past saturation; the
                           # (faster) compressed fleets still keep up

#: the mixed fleet under test (index 0 is the lossless instance).
#: stream-512 is the sparse representative: a sliding-window cache has
#: no eviction-scoring overhead, so it keeps the sparse speed advantage
#: at long context that H2O's accumulator bookkeeping gives back.
MIXED_ALGOS: Tuple[str, ...] = ("fp16", "kivi-4", "gear-4", "stream-512")
COMPRESSED_ALGOS: Tuple[str, ...] = MIXED_ALGOS[1:]

#: sample classes: (label, weight, algos that degrade it, score ratio
#: under a degrading algo).  Ratios feed both quality and the response
#: contraction; risk = degraded algos / 3 via ``risk_scores``.  The
#: fragile classes mirror the paper's Quant (C) / Sparse (C) split:
#: a sample fragile under quantisation still has a full-quality home on
#: the sparse instance and vice versa, so only the Algorithm 1
#: negatives genuinely need the FP16 instance.
SAMPLE_CLASSES = (
    ("safe", 0.64, (), 1.0),
    ("sparse-fragile", 0.12, ("stream-512",), 0.60),
    ("quant-fragile", 0.12, ("kivi-4", "gear-4"), 0.50),
    ("negative", 0.12, ("kivi-4", "gear-4", "stream-512"), 0.30),
)

#: Algorithm 1 relative-loss threshold for risk scoring: a 0.65 score
#: ratio is a fail at theta=0.25, so every degraded (sample, algo) pair
#: counts toward the sample's risk
RISK_THETA = 0.25

#: risk thresholds swept by the compression policy (1.01 = gate never
#: fires: pure scoring).  Class risks land on {0, 1/3, 2/3, 1}.
THRESHOLDS = (0.25, 0.5, 0.9, 1.01)


# ----------------------------------------------------------------------
# workload construction
# ----------------------------------------------------------------------
def build_workload(
    n: int = N_REQUESTS, seed: int = SEED
) -> Tuple[List[RoutedRequest], Dict[str, Dict[str, float]]]:
    """(routed requests with risk scores, quality ratios per request).

    The second value maps ``request_id -> {algo: score ratio}`` for the
    fleet's compressed algorithms (1.0 where the sample is safe).
    """
    rng = np.random.default_rng(seed)
    labels = [c[0] for c in SAMPLE_CLASSES]
    weights = np.array([c[1] for c in SAMPLE_CLASSES])
    degraded = {c[0]: set(c[2]) for c in SAMPLE_CLASSES}
    ratio_of = {c[0]: c[3] for c in SAMPLE_CLASSES}
    classes = rng.choice(len(labels), size=n, p=weights / weights.sum())

    # score table for the negative-sample analysis (the paper's tooling
    # is the risk source, not a hand-fed label)
    baseline: Dict[str, ScoredSample] = {}
    by_algo: Dict[str, Dict[str, ScoredSample]] = {
        a: {} for a in COMPRESSED_ALGOS
    }
    ratios: Dict[str, Dict[str, float]] = {}
    sys_ids = tuple(int(t) for t in rng.integers(0, 30_000, size=SYS_TOKENS))

    reqs: List[RoutedRequest] = []
    specs: List[Tuple[str, str, int, int, Tuple[int, ...]]] = []
    for i in range(n):
        rid = f"r{i:03d}"
        label = labels[int(classes[i])]
        baseline[rid] = ScoredSample(rid, "qa", 0.8)
        ratios[rid] = {}
        for a in COMPRESSED_ALGOS:
            ratio = ratio_of[label] if a in degraded[label] else 1.0
            by_algo[a][rid] = ScoredSample(rid, "qa", 0.8 * ratio)
            ratios[rid][a] = ratio
        user = int(rng.integers(*USER_TOKENS))
        resp = int(rng.integers(*RESP_TOKENS))
        suffix = tuple(int(t) for t in rng.integers(0, 30_000, size=user))
        specs.append((rid, label, user, resp, suffix))

    analysis = NegativeSampleAnalysis(baseline, by_algo)
    risks = analysis.risk_scores(list(COMPRESSED_ALGOS), RISK_THETA)

    # arrival rate: 4x FP16 just past saturation for this workload
    m = cost_model()
    fp16 = comp_spec("fp16")
    service = []
    for rid, label, user, resp, suffix in specs:
        prompt = SYS_TOKENS + user
        prefill = m.prefill(1, prompt, fp16).seconds
        step = (
            m.decode_step(MAX_BATCH, prompt + resp // 2, fp16).seconds
            / MAX_BATCH
        )
        service.append(prefill + resp * step)
    rps = TARGET_UTILIZATION * 4.0 / float(np.mean(service))
    arrivals = np.cumsum(rng.exponential(1.0 / rps, size=n))

    for i, (rid, label, user, resp, suffix) in enumerate(specs):
        lengths = {"fp16": resp}
        for a in COMPRESSED_ALGOS:
            # degraded decodes terminate early: contracted to the ratio
            lengths[a] = max(16, int(resp * ratios[rid][a]))
        reqs.append(
            RoutedRequest(
                request_id=rid,
                arrival=float(arrivals[i]),
                prompt_len=SYS_TOKENS + user,
                intended_len=resp,
                lengths_by_algo=lengths,
                ttft_deadline=TTFT_SLO,
                token_ids=sys_ids + suffix,
                risk=float(risks[rid]),
            )
        )
    return reqs, ratios


def build_fleet(algos: Sequence[str]) -> List[ServerInstance]:
    """Fresh instances (live per-run state: prefix caches, queues)."""
    return [
        ServerInstance(
            cost_model(), comp_spec(a), max_batch=MAX_BATCH,
            prefix_cache=PrefixIndex(),
        )
        for a in algos
    ]


def make_throughput_fn(algos: Sequence[str]):
    """Oracle decode-rate predictor from the cost model itself."""
    m = cost_model()
    specs = comp_specs(set(algos))

    def throughput_fn(algo: str, batch: int, kv: int) -> float:
        return m.decode_throughput(batch, kv, specs[algo]) or 1.0

    return throughput_fn


def length_fn(req: RoutedRequest, algo: str) -> float:
    """Oracle length predictor (Table 8 evaluates learned ones)."""
    return float(req.lengths_by_algo.get(algo, req.intended_len))


# ----------------------------------------------------------------------
# one routed run -> frontier point
# ----------------------------------------------------------------------
def _quality(
    result,
    algos: Sequence[str],
    ratios: Dict[str, Dict[str, float]],
) -> float:
    """Mean per-request quality: the score ratio under the algorithm
    that produced the tokens the client keeps (1.0 for FP16 and for
    verified fallbacks)."""
    vals = []
    for rid, ratio_by_algo in ratios.items():
        idx = result.assignment.get(rid)
        if idx is None:
            continue
        if rid in result.fallbacks:
            vals.append(1.0)  # re-decoded losslessly
            continue
        vals.append(ratio_by_algo.get(algos[idx], 1.0))
    return float(np.mean(vals)) if vals else 1.0


def run_fleet(
    algos: Sequence[str],
    requests: Sequence[RoutedRequest],
    ratios: Dict[str, Dict[str, float]],
    policy: RoutingPolicy = RoutingPolicy.COMPRESSION,
    risk_threshold: float = 0.5,
    fallback: bool = False,
) -> Dict[str, float]:
    """Serve the workload online and fold one frontier point."""
    fleet = build_fleet(algos)
    router = Router(
        fleet,
        list(algos),
        policy,
        throughput_fn=make_throughput_fn(algos),
        length_fn=length_fn,
        risk_threshold=risk_threshold,
        fallback=fallback,
    )
    trace = Trace()
    result = router.serve_online(requests, trace=trace)
    metrics = StepMetrics.from_trace(trace)
    summary = result.effective_summary()
    return {
        "policy": policy.value,
        "threshold": risk_threshold,
        "fallback": int(fallback),
        "quality": _quality(result, algos, ratios),
        "goodput": float(summary.goodput),
        "ttft_attainment": float(summary.ttft_attainment or 0.0),
        "mean_e2e": float(summary.mean),
        "p99_e2e": float(summary.p99),
        "reroutes": int(result.reroutes),
        "fallbacks": len(result.fallbacks),
        "prefix_hits": int(metrics.prefix_hits),
    }


def sweep(
    requests: Sequence[RoutedRequest],
    ratios: Dict[str, Dict[str, float]],
    thresholds: Sequence[float] = THRESHOLDS,
) -> Dict[str, List[Dict[str, float]]]:
    """Baselines plus the full (threshold x fallback) frontier."""
    baselines = [
        dict(
            run_fleet(
                ("fp16",) * 4, requests, ratios,
                policy=RoutingPolicy.LOAD_BALANCE,
            ),
            fleet="fp16-static",
        ),
        dict(
            run_fleet(
                ("kivi-4",) * 4, requests, ratios,
                policy=RoutingPolicy.LOAD_BALANCE,
            ),
            fleet="compressed-static",
        ),
    ]
    frontier = []
    for fallback in (False, True):
        for theta in thresholds:
            frontier.append(
                dict(
                    run_fleet(
                        MIXED_ALGOS, requests, ratios,
                        risk_threshold=theta, fallback=fallback,
                    ),
                    fleet="mixed",
                )
            )
    return {"baselines": baselines, "frontier": frontier}


# ----------------------------------------------------------------------
def run(scale: Optional[float] = None) -> ExperimentResult:
    """Compression-aware routing: risk-threshold sweep vs static fleets."""
    requests, ratios = build_workload()
    data = sweep(requests, ratios)

    def row(p: Dict[str, float]) -> List[str]:
        theta = (
            f"{p['threshold']:.2f}"
            if p["fleet"] == "mixed"
            else "-"
        )
        return [
            p["fleet"],
            p["policy"],
            theta,
            "on" if p["fallback"] else "off",
            f"{p['quality']:.3f}",
            f"{p['goodput']:.1f}",
            f"{p['ttft_attainment']:.2f}",
            f"{p['mean_e2e']:.2f}",
            f"{p['reroutes']}",
            f"{p['fallbacks']}",
        ]

    result = ExperimentResult(
        name="Compression-aware routing — quality vs goodput frontier",
        description=(
            "LLaMA-7B/A6000/LMDeploy.  "
            f"{len(requests)} Poisson arrivals at {TARGET_UTILIZATION:.2f}x "
            "the 4x-FP16 saturation rate, every request under a "
            f"{TTFT_SLO:.1f}s TTFT SLO; "
            f"{SAMPLE_CLASSES[3][1]:.0%} of samples are Algorithm 1 "
            "negatives (risk 1.0) and another "
            f"{SAMPLE_CLASSES[1][1] + SAMPLE_CLASSES[2][1]:.0%} degrade "
            "under some algorithms (graded risk from "
            "NegativeSampleAnalysis.risk_scores).  The mixed fleet is "
            f"{'+'.join(MIXED_ALGOS)} under the compression policy; "
            "quality is the mean score ratio of the tokens the client "
            "keeps, goodput counts SLO-attained tokens only.  With the "
            "risk gate (fallback off) risky requests never decode "
            "compressed; with verify-and-fallback they may, and failed "
            "verifications re-decode on FP16 at the original's finish."
        ),
        data={"raw": data},
    )
    rows = [row(p) for p in data["baselines"]] + [
        row(p) for p in data["frontier"]
    ]
    result.tables.append(
        format_table(
            ["fleet", "policy", "theta", "fb", "quality",
             "goodput (tok/s)", "TTFT att.", "mean E2E (s)",
             "reroutes", "fallbacks"],
            rows,
            title="Risk-threshold sweep vs static baselines:",
        )
    )
    return result
