"""Table 4: semantic scores and length increase of verbose outputs.

The paper selects ~200 ShareGPT requests where compression produced
longer responses than FP16, then reports semantic similarity (against a
reference response) and the relative length increase — showing that
compression's longer outputs carry only minor semantic degradation,
i.e. compression makes models *verbose*.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.semantic import SemanticScorer
from repro.core.config import ExperimentScale, current_scale
from repro.experiments.common import ALGOS, ExperimentResult, functional_model
from repro.experiments.genruns import sharegpt_requests, sharegpt_run


def semantic_and_length(
    scale: ExperimentScale,
    model: str = "llama",
    algos: Sequence[str] = ALGOS,
    max_samples: int = 200,
) -> Dict[str, Dict[str, float]]:
    """algo -> {semantic_score (x100), length_increase, n} on the
    longer-response subset; plus the FP16 row."""
    reqs = sharegpt_requests(scale)
    base = sharegpt_run(scale, "fp16", 1.0, model)
    scorer = SemanticScorer(functional_model(model).config)
    refs = [r.reference for r in reqs]
    base_scores = scorer.score_many(base.responses, refs)

    out: Dict[str, Dict[str, float]] = {
        "fp16": {
            "semantic": 100 * float(base_scores.mean()),
            "length_increase": 1.0,
            "n": len(reqs),
        }
    }
    for algo in algos:
        run_ = sharegpt_run(scale, algo, 1.0, model)
        longer = np.nonzero(run_.lengths > base.lengths)[0][:max_samples]
        if longer.size == 0:
            out[algo] = {"semantic": float("nan"), "length_increase": 1.0, "n": 0}
            continue
        scores = scorer.score_many(
            [run_.responses[i] for i in longer], [refs[i] for i in longer]
        )
        ratio = run_.lengths[longer] / np.maximum(base.lengths[longer], 1)
        out[algo] = {
            "semantic": 100 * float(scores.mean()),
            "length_increase": float(ratio.mean()),
            "n": int(longer.size),
        }
    return out


def run(
    scale: ExperimentScale = None, model: str = "llama"
) -> ExperimentResult:
    """Reproduce Table 4."""
    scale = scale or current_scale()
    data = semantic_and_length(scale, model)
    cols = list(data)
    res = ExperimentResult(
        name=f"Table 4 — semantic score vs length increase ({model})",
        description=(
            "On the subset of requests where compression lengthens the "
            "response: semantic similarity to the reference (x100) and "
            "mean relative length increase."
        ),
        data={"table": data},
    )
    rows = [
        ["Semantic Score"] + [f"{data[c]['semantic']:.1f}" for c in cols],
        ["Length Increase (x)"] + [f"{data[c]['length_increase']:.2f}" for c in cols],
        ["n (longer subset)"] + [str(data[c]["n"]) for c in cols],
    ]
    res.tables.append(format_table(["Metric"] + cols, rows))
    return res
