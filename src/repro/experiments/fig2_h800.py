"""Figure 2: throughput analysis of LLaMA-70B on H800 GPUs.

Same panel structure as Figure 1 but for the 70B model under tensor
parallelism on H800 — the high-bandwidth regime where compression's
relative benefit shrinks (the paper's bandwidth-contention argument).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import ALL_ALGOS, ExperimentResult
from repro.experiments.fig1_throughput import BATCHES, throughput_grid

DECODE_LENS = (512, 2048, 8192)
PREFILL_LENS = (512, 2048, 4096)


def run(tp: int = 4) -> ExperimentResult:
    """Reproduce Figure 2 (LLaMA-70B, H800, TP=4)."""
    res = ExperimentResult(
        name=f"Figure 2 — LLaMA-70B on H800 (TP={tp})",
        description=(
            "Per-algorithm prefill/decode throughput on the H800's much "
            "higher memory bandwidth; compression speedups compress "
            "toward 1x relative to the A6000 results of Figure 1."
        ),
    )
    for stage, lens in (("prefill", PREFILL_LENS), ("decode", DECODE_LENS)):
        grid = throughput_grid(
            stage, arch="llama-70b", gpu="h800", lengths=lens, tp=tp
        )
        res.data[f"{stage}_grid"] = grid
        rows = [
            [b, L] + [grid[a][(b, L)] for a in ALL_ALGOS]
            for b in BATCHES
            for L in lens
        ]
        res.tables.append(
            format_table(
                ["batch", "len"] + list(ALL_ALGOS),
                rows,
                title=f"{stage} throughput (tok/s, 0=OOM):",
                precision=0,
            )
        )
    return res
