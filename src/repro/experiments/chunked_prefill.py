"""Chunked prefill: decode-stall tail vs chunk size (ROADMAP item).

The paper's Fig. 5 / Table 8 latency measurements ride on the serving
core, and PR 1's event loop admitted-and-prefilled atomically: a
3k-token prompt landing in a running decode batch froze every running
request for the whole prefill — exactly the TBOT tail production stacks
show (Section 5).  This experiment sweeps the Sarathi/vLLM-style
``chunk_size`` knob on the long-prompt interference scenario and
reports the decode-stall metric (max inter-DECODE_STEP gap), TBOT
tail, the long request's TTFT (the price of chunking), and total
throughput (which chunking must not cost).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.compression.base import NoCompression
from repro.experiments.common import ExperimentResult, cost_model
from repro.serving import ServerInstance, ServingRequest, StepMetrics, Trace

#: chunk sizes swept (None = seed single-shot prefill)
CHUNK_SIZES: Sequence[Optional[int]] = (None, 2048, 1024, 512, 256)


def interference_stream(
    n_decoding: int = 8,
    decode_prompt: int = 256,
    decode_resp: int = 512,
    long_prompt: int = 3200,
    long_resp: int = 64,
    long_arrival: float = 2.0,
) -> List[ServingRequest]:
    """``n_decoding`` short requests decoding when a long prompt lands."""
    reqs = [
        ServingRequest(f"d{i}", 0.0, decode_prompt, decode_resp)
        for i in range(n_decoding)
    ]
    reqs.append(ServingRequest("long", long_arrival, long_prompt, long_resp))
    return reqs


def loaded_stream(n: int = 32, seed: int = 3) -> List[ServingRequest]:
    """Poisson stream mixing short and long prompts with short responses,
    so repeated prefill stalls land in many requests' token streams."""
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(0.25, size=n))
    prompts = rng.choice(
        [256, 512, 3072, 4096], size=n, p=[0.4, 0.3, 0.2, 0.1]
    )
    resps = rng.integers(32, 128, size=n)
    return [
        ServingRequest(
            f"r{i}", float(arrivals[i]), int(prompts[i]), int(resps[i])
        )
        for i in range(n)
    ]


def _sweep(cm, comp, requests_fn):
    rows = []
    baseline_gap = None
    for chunk in CHUNK_SIZES:
        inst = ServerInstance(cm, comp, chunk_size=chunk)
        trace = Trace()
        res = inst.run(requests_fn(), trace=trace)
        m = StepMetrics.from_trace(trace)
        tokens = sum(r.generated for r in res.completed)
        makespan = max(r.finish for r in res.completed)
        if chunk is None:
            baseline_gap = m.max_decode_gap
        rows.append(
            {
                "chunk": chunk,
                "res": res,
                "metrics": m,
                "gap_ratio": baseline_gap / m.max_decode_gap,
                "throughput": tokens / makespan,
            }
        )
    return rows


def run(scale=None) -> ExperimentResult:
    """Sweep chunk sizes over interference and loaded-stream scenarios."""
    comp = NoCompression().cost_spec()
    cm = cost_model()
    rows = []
    interference = _sweep(cm, comp, interference_stream)
    for row in interference:
        m = row["metrics"]
        long = next(
            r for r in row["res"].completed if r.request_id == "long"
        )
        rows.append(
            [
                "off" if row["chunk"] is None else str(row["chunk"]),
                f"{m.max_decode_gap * 1e3:.1f}",
                f"{row['gap_ratio']:.2f}x",
                f"{m.p99_tbot * 1e3:.2f}",
                f"{m.mean_tbot * 1e3:.2f}",
                f"{long.ttft:.3f}",
                f"{row['throughput']:.1f}",
                str(m.prefill_chunks),
            ]
        )
    loaded_rows = []
    for row in _sweep(cm, comp, loaded_stream):
        m = row["metrics"]
        loaded_rows.append(
            [
                "off" if row["chunk"] is None else str(row["chunk"]),
                f"{m.max_decode_gap * 1e3:.0f}",
                f"{row['gap_ratio']:.2f}x",
                f"{m.p99_tbot * 1e3:.2f}",
                f"{m.mean_tbot * 1e3:.2f}",
                f"{row['res'].percentile_e2e(99):.2f}",
                f"{row['throughput']:.1f}",
                str(m.prefill_chunks),
            ]
        )
    result = ExperimentResult(
        name="Chunked prefill — decode-stall tail vs chunk size",
        description=(
            "LLaMA-7B/A6000/LMDeploy.  Interference: 8 running decodes "
            "(256/512 tokens) joined at t=2s by a 3200-token prompt — "
            "single-shot prefill stalls every decode for the whole "
            "prompt pass; chunked prefill bounds the stall near one "
            "chunk at equal total throughput, trading a slightly later "
            "first token for the long request.  Loaded stream: under a "
            "Poisson mix of short and long prompts the repeated stalls "
            "surface in the p99 TBOT tail; smaller chunks trade "
            "throughput for tail latency."
        ),
    )
    result.tables.append(
        format_table(
            ["chunk", "max stall (ms)", "vs off", "p99 TBOT (ms)",
             "mean TBOT (ms)", "long TTFT (s)", "tok/s", "chunks"],
            rows,
            title="Interference (8 decodes + one 3200-token prompt):",
        )
    )
    result.tables.append(
        format_table(
            ["chunk", "max stall (ms)", "vs off", "p99 TBOT (ms)",
             "mean TBOT (ms)", "p99 E2E (s)", "tok/s", "chunks"],
            loaded_rows,
            title=(
                "Loaded stream (32 mixed requests, Poisson arrivals; "
                "repeated long prefills land in short-response streams):"
            ),
        )
    )
    result.data["rows"] = rows
    result.data["loaded_rows"] = loaded_rows
    result.data["raw"] = [
        {
            "chunk": row["chunk"],
            "max_decode_gap": row["metrics"].max_decode_gap,
            "p99_tbot": row["metrics"].p99_tbot,
            "throughput": row["throughput"],
        }
        for row in interference
    ]
    return result
