"""Disaggregated prefill/decode fleet under diurnal + bursty load.

The serving-efficiency claim the fleet split is for: time-to-first-token
is made by the *prefill* path, and on a monolithic instance prompt
passes queue behind everyone else's decode steps — so TTFT attainment
collapses as the arrival rate climbs, long before raw throughput runs
out.  A disaggregated fleet keeps prompt passes on a prefill pool,
ships the finished KV to a decode pool over a priced interconnect link
(:func:`repro.hardware.interconnect.transfer_time`; compressed KV ships
``kv_bytes_ratio`` times fewer bytes), and lets a telemetry-driven
:class:`~repro.serving.fleet.Autoscaler` activate standby instances as
the registry shows queues building.

Workload: non-homogeneous Poisson arrivals — a diurnal sinusoid (peak
in the first half, trough in the second) with a burst storm riding the
peak — swept over arrival-rate multipliers covering a 10x range.  The
same workload is served by static monolithic fleets (2x and 4x) and by
the autoscaled disaggregated fleet.

The headline (pinned by ``benchmarks/test_serving_disagg.py``): the
disaggregated fleet holds TTFT attainment across the full 10x rate
sweep — at least matching the best static fleet at every rate — while
the static fleets collapse at the top rate; the trace shows at least
one ``SCALE_UP`` during the storm and one ``SCALE_DOWN`` in the trough.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ExperimentResult,
    comp_spec,
    cost_model,
)
from repro.serving import (
    Autoscaler,
    DisaggFleet,
    ServerInstance,
    ServingRequest,
    StepMetrics,
    Trace,
)

SEED = 17
N_REQUESTS = 110
ALGO = "kivi-4"            # homogeneous fleet; KV ships at 1/4 bytes
PROMPT_TOKENS = (320, 768)
RESP_TOKENS = (80, 192)
TTFT_SLO = 2.0             # seconds, on every request
MAX_BATCH = 8

#: arrival-rate multipliers (10x sweep)
RATE_SCALES: Tuple[float, ...] = (1.0, 3.0, 10.0)
#: base rate: a 2-instance monolithic fleet at ~35% utilisation at 1x
BASE_UTILIZATION = 0.35
DIURNAL_AMP = 0.5          # rate swings +-50% over one period (= the run)
BURST_MULT = 3.0           # storm multiplier riding the diurnal peak
BURST_WINDOW = (0.22, 0.32)  # storm start/end as fractions of the run

#: pool sizing: (pool size, initially active)
PREFILL_POOL, PREFILL_ACTIVE = 4, 1
DECODE_POOL, DECODE_ACTIVE = 8, 2
STATIC_SIZES: Tuple[int, ...] = (2, 4)

AUTOSCALER = dict(
    tick=0.5, ttft_target=0.95, queue_high=3.0, queue_low=0.5,
    occ_high=0.85, occ_low=0.25, cooldown_ticks=2, min_active=1,
)


# ----------------------------------------------------------------------
# workload construction
# ----------------------------------------------------------------------
def base_rate() -> float:
    """Arrivals/s putting 2 monolithic instances at BASE_UTILIZATION."""
    m = cost_model()
    spec = comp_spec(ALGO)
    prompt = sum(PROMPT_TOKENS) // 2
    resp = sum(RESP_TOKENS) // 2
    prefill = m.prefill(1, prompt, spec).seconds
    step = m.decode_step(MAX_BATCH, prompt + resp // 2, spec).seconds
    service = prefill + resp * step / MAX_BATCH
    return BASE_UTILIZATION * 2.0 / service


def build_workload(
    rate_scale: float, n: int = N_REQUESTS, seed: int = SEED
) -> List[Tuple[str, float, int, int]]:
    """Request specs ``(id, arrival, prompt_len, response_len)``.

    Arrivals are drawn by thinning a homogeneous Poisson process at the
    peak rate: diurnal sinusoid over one run-length period (trough in
    the tail, so the autoscaler has something to drain into) plus a
    burst storm over ``BURST_WINDOW`` riding the diurnal peak.
    """
    rng = np.random.default_rng(seed)
    lam0 = base_rate() * rate_scale
    horizon = n / lam0          # expected run length at the mean rate
    b0, b1 = (f * horizon for f in BURST_WINDOW)

    def rate(t: float) -> float:
        lam = lam0 * max(0.05, 1.0 + DIURNAL_AMP * math.sin(
            2.0 * math.pi * t / horizon))
        if b0 <= t < b1:
            lam *= BURST_MULT
        return lam

    lam_max = lam0 * (1.0 + DIURNAL_AMP) * BURST_MULT
    specs: List[Tuple[str, float, int, int]] = []
    t = 0.0
    while len(specs) < n:
        t += float(rng.exponential(1.0 / lam_max))
        if rng.uniform() * lam_max > rate(t):
            continue
        rid = f"r{len(specs):03d}"
        prompt = int(rng.integers(*PROMPT_TOKENS))
        resp = int(rng.integers(*RESP_TOKENS))
        specs.append((rid, t, prompt, resp))
    return specs


def make_requests(
    specs: Sequence[Tuple[str, float, int, int]]
) -> List[ServingRequest]:
    """Fresh request objects (the simulator mutates them in place)."""
    return [
        ServingRequest(
            request_id=rid, arrival=arrival, prompt_len=prompt,
            response_len=resp, ttft_deadline=TTFT_SLO,
        )
        for rid, arrival, prompt, resp in specs
    ]


def build_instances(n: int) -> List[ServerInstance]:
    return [
        ServerInstance(cost_model(), comp_spec(ALGO), max_batch=MAX_BATCH)
        for _ in range(n)
    ]


def build_fleet(kind: str) -> DisaggFleet:
    """``static-N`` (monolithic) or ``disagg`` (autoscaled pools)."""
    if kind.startswith("static-"):
        return DisaggFleet([], build_instances(int(kind.split("-")[1])))
    if kind == "disagg":
        return DisaggFleet(
            build_instances(PREFILL_POOL),
            build_instances(DECODE_POOL),
            prefill_active=PREFILL_ACTIVE,
            decode_active=DECODE_ACTIVE,
            autoscaler=Autoscaler(**AUTOSCALER),
        )
    raise ValueError(f"unknown fleet kind {kind!r}")


def scenario_config(kind: str) -> Dict[str, object]:
    """Replay scenario config reproducing :func:`build_fleet` exactly.

    ``repro.serving.replay.build_scenario`` on this dict constructs the
    same fleet ``build_fleet(kind)`` does, so an exported trace of a
    run here replays bit-for-bit (pinned by ``tests/test_replay.py``).
    """
    from repro.serving.replay import fleet_scenario

    inst = dict(algo=ALGO, max_batch=MAX_BATCH)
    if kind.startswith("static-"):
        n = int(kind.split("-")[1])
        return fleet_scenario(decode=[inst] * n)
    if kind == "disagg":
        return fleet_scenario(
            decode=[inst] * DECODE_POOL,
            prefill=[inst] * PREFILL_POOL,
            prefill_active=PREFILL_ACTIVE,
            decode_active=DECODE_ACTIVE,
            autoscaler=AUTOSCALER,
        )
    raise ValueError(f"unknown fleet kind {kind!r}")


# ----------------------------------------------------------------------
# one run -> one row
# ----------------------------------------------------------------------
def run_fleet(
    kind: str,
    rate_scale: float,
    specs: Sequence[Tuple[str, float, int, int]],
    export_path: Optional[str] = None,
) -> Dict[str, float]:
    fleet = build_fleet(kind)
    trace = Trace()
    requests = make_requests(specs)
    result = fleet.serve(requests, trace=trace)
    if export_path is not None:
        from repro.serving import dump_jsonl
        from repro.serving.replay import workload_specs

        # shape fields are immutable during a run, so the post-run
        # requests still describe the pre-run workload exactly
        dump_jsonl(
            trace, export_path,
            scenario=scenario_config(kind),
            workload=workload_specs(requests),
        )
    metrics = StepMetrics.from_trace(trace)
    done = result.completed
    ttfts = [r.ttft for r in done if r.first_token is not None]
    e2es = sorted(r.e2e_latency for r in done if r.finish is not None)
    p95 = e2es[int(0.95 * (len(e2es) - 1))] if e2es else 0.0
    return {
        "fleet": kind,
        "rate_scale": rate_scale,
        "ttft_attainment": float(result.ttft_attainment() or 0.0),
        "completed": len(done),
        "rejected": len(result.rejected),
        "mean_ttft": float(np.mean(ttfts)) if ttfts else 0.0,
        "p95_e2e": float(p95),
        "kv_transfers": int(metrics.kv_transfers),
        "kv_transfer_mb": float(metrics.kv_transfer_bytes) / 1e6,
        "kv_transfer_seconds": float(metrics.kv_transfer_seconds),
        "scale_ups": int(metrics.scale_ups),
        "scale_downs": int(metrics.scale_downs),
    }


def sweep(
    rate_scales: Sequence[float] = RATE_SCALES,
) -> List[Dict[str, float]]:
    """Every fleet kind at every arrival-rate multiplier."""
    kinds = [f"static-{n}" for n in STATIC_SIZES] + ["disagg"]
    rows: List[Dict[str, float]] = []
    for scale in rate_scales:
        specs = build_workload(scale)
        for kind in kinds:
            rows.append(run_fleet(kind, scale, specs))
    return rows


# ----------------------------------------------------------------------
def run(scale: Optional[float] = None) -> ExperimentResult:
    """Disaggregated fleet vs static monolithic under a 10x rate sweep."""
    data = sweep()

    def row(p: Dict[str, float]) -> List[str]:
        return [
            p["fleet"],
            f"{p['rate_scale']:.0f}x",
            f"{p['ttft_attainment']:.2f}",
            f"{p['mean_ttft']:.2f}",
            f"{p['p95_e2e']:.1f}",
            f"{p['completed']}",
            f"{p['kv_transfers']}",
            f"{p['kv_transfer_mb']:.0f}",
            f"{p['scale_ups']}",
            f"{p['scale_downs']}",
        ]

    result = ExperimentResult(
        name="Disaggregated prefill/decode fleet — TTFT under a 10x rate sweep",
        description=(
            f"LLaMA-7B/A6000/LMDeploy, {ALGO} on every instance.  "
            f"{N_REQUESTS} arrivals per run from a diurnal sinusoid "
            f"(+-{DIURNAL_AMP:.0%}) with a {BURST_MULT:.0f}x burst storm "
            f"riding the peak, swept over "
            f"{'/'.join(f'{s:.0f}x' for s in RATE_SCALES)} the base rate "
            f"(2 monolithic instances at {BASE_UTILIZATION:.0%} load); "
            f"every request under a {TTFT_SLO:.1f}s TTFT SLO.  Static "
            "fleets are monolithic (every instance prefills and "
            "decodes); the disaggregated fleet runs "
            f"{PREFILL_ACTIVE}/{PREFILL_POOL} prefill and "
            f"{DECODE_ACTIVE}/{DECODE_POOL} decode instances active at "
            "start, KV handoffs priced over NVLink, and the "
            "telemetry-driven autoscaler activating/draining standbys "
            "on queue depth, KV occupancy, and TTFT attainment.  "
            "Rejected requests count as TTFT misses."
        ),
        data={"raw": data},
    )
    result.tables.append(
        format_table(
            ["fleet", "rate", "TTFT att.", "mean TTFT (s)", "p95 E2E (s)",
             "done", "KV xfers", "xfer MB", "ups", "drains"],
            [row(p) for p in data],
            title="Fleet x arrival-rate sweep:",
        )
    )
    return result
