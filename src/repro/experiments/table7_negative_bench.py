"""Table 7 (and appendix Table 11): scores on the negative benchmark.

The negative-sample benchmark (Section 5.3) is the union of each
algorithm's negatives at theta=10%.  Scores on that subset show large
drops for every compression algorithm relative to the baseline —
especially on summarization, QA and code.
"""

from __future__ import annotations

from repro.analysis.reporting import dict_rows, format_table
from repro.core.config import ExperimentScale, current_scale
from repro.datasets.longbench import TASK_GROUPS
from repro.experiments.common import ALGOS, ExperimentResult
from repro.experiments.fig6_negative_threshold import build_analysis

THETA = 0.10


def run(
    scale: ExperimentScale = None, model: str = "llama"
) -> ExperimentResult:
    """Reproduce Table 7."""
    scale = scale or current_scale()
    analysis = build_analysis(scale, model)
    bench = analysis.benchmark_ids(ALGOS, THETA)
    scores = analysis.scores_on(bench, TASK_GROUPS)
    res = ExperimentResult(
        name=f"Table 7 — negative benchmark scores ({model})",
        description=(
            f"{len(bench)} negative samples (theta={THETA:.0%}); mean "
            "task-group scores x100 for the baseline and each algorithm."
        ),
        data={"scores": scores, "benchmark_size": len(bench)},
    )
    if scores:
        headers = ["task group"] + list(next(iter(scores.values())))
        res.tables.append(format_table(headers, dict_rows(scores)))
    else:
        res.tables.append("(no negative samples at this scale)")
    return res
