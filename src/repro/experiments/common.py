"""Shared infrastructure for the per-table/figure experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compression.base import CompressionCostSpec, NoCompression
from repro.compression.registry import create
from repro.engines.base import ServingCostModel
from repro.engines.presets import get_engine
from repro.hardware.interconnect import (
    NVLINK_A6000,
    NVLINK_H800,
    InterconnectSpec,
)
from repro.hardware.specs import get_gpu
from repro.model.arch import get_arch
from repro.model.config import llama_sim_config, mistral_sim_config
from repro.model.transformer import FunctionalTransformer

#: the four algorithms of the paper's main evaluation
ALGOS: Tuple[str, ...] = ("kivi-4", "gear-4", "h2o-512", "stream-512")
#: baseline + algorithms
ALL_ALGOS: Tuple[str, ...] = ("fp16",) + ALGOS

#: paper-style column labels
LABELS: Dict[str, str] = {
    "fp16": "FP16",
    "kivi-4": "KIVI-4",
    "gear-4": "GEAR-4",
    "h2o-512": "H2O-512",
    "stream-512": "Stream-512",
    "snapkv-512": "SnapKV-512",
}


@lru_cache(maxsize=4)
def llama_model() -> FunctionalTransformer:
    """The LLaMA-style functional model (shared across experiments)."""
    return FunctionalTransformer(llama_sim_config())


@lru_cache(maxsize=4)
def mistral_model() -> FunctionalTransformer:
    """The Mistral-style (GQA) functional model."""
    return FunctionalTransformer(mistral_sim_config())


def functional_model(name: str) -> FunctionalTransformer:
    """Functional model by family name ("llama" or "mistral")."""
    if name == "llama":
        return llama_model()
    if name == "mistral":
        return mistral_model()
    raise KeyError(f"unknown functional model {name!r}")


def cost_model(
    arch: str = "llama-7b",
    gpu: str = "a6000",
    engine: str = "lmdeploy",
    tp: int = 1,
) -> ServingCostModel:
    """Construct a serving cost model for a deployment."""
    interconnect: Optional[InterconnectSpec] = None
    if tp > 1:
        interconnect = NVLINK_H800 if gpu.lower() == "h800" else NVLINK_A6000
    return ServingCostModel(
        get_arch(arch), get_gpu(gpu), get_engine(engine), tp=tp,
        interconnect=interconnect,
    )


def comp_spec(name: str) -> CompressionCostSpec:
    """Cost spec for an algorithm name ("fp16" included)."""
    if name == "fp16":
        return NoCompression().cost_spec()
    return create(name).cost_spec()


def comp_specs(names: Sequence[str]) -> Dict[str, CompressionCostSpec]:
    """Cost specs for several algorithm names."""
    return {n: comp_spec(n) for n in names}


@dataclass
class ExperimentResult:
    """Rendered output + raw data of one experiment."""

    name: str
    description: str
    tables: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Full printable report."""
        head = f"== {self.name} ==\n{self.description}"
        return "\n\n".join([head] + self.tables)
