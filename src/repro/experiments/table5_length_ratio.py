"""Table 5 (and appendix Table 9): length-variation ratios.

Fraction of ShareGPT-sim samples whose response length changes by at
least 50% relative to the T=1 FP16 baseline — under temperature 0.9 and
1.1 (sampling noise reference) and under each compression algorithm at
T=1.  The paper's point: temperature moves lengths both ways roughly
evenly, compression skews toward *longer* responses.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.length_stats import VariationRatios, length_difference
from repro.analysis.reporting import format_table
from repro.core.config import ExperimentScale, current_scale
from repro.experiments.common import ALGOS, ExperimentResult
from repro.experiments.genruns import sharegpt_run

TEMP_CONFIGS = (("T=0.9", "fp16", 0.9), ("T=1.1", "fp16", 1.1))


def variation_table(
    scale: ExperimentScale,
    model: str = "llama",
    algos: Sequence[str] = ALGOS,
) -> Dict[str, VariationRatios]:
    """column label -> variation ratios vs the FP16 T=1 baseline."""
    base = sharegpt_run(scale, "fp16", 1.0, model).lengths
    configs = list(TEMP_CONFIGS) + [(a, a, 1.0) for a in algos]
    out: Dict[str, VariationRatios] = {}
    for label, algo, temp in configs:
        lens = sharegpt_run(scale, algo, temp, model).lengths
        out[label] = VariationRatios.from_d(length_difference(base, lens))
    return out


def run(
    scale: ExperimentScale = None, model: str = "llama"
) -> ExperimentResult:
    """Reproduce Table 5 (or Table 9 with ``model="mistral"``)."""
    scale = scale or current_scale()
    table = variation_table(scale, model)
    cols = list(table)
    res = ExperimentResult(
        name=f"Table 5 — response-length variation ratios ({model})",
        description=(
            f"{scale.sharegpt_requests} ShareGPT-sim requests; ratio of "
            "samples with |D| >= 50% vs the FP16 T=1 baseline."
        ),
        data={"ratios": table},
    )
    rows = [
        ["% D >= 50% (shorter)"] + [f"{table[c].shorter_50:.1f}%" for c in cols],
        ["% D <= -50% (longer)"] + [f"{table[c].longer_50:.1f}%" for c in cols],
    ]
    res.tables.append(format_table(["Metric"] + cols, rows))
    return res
