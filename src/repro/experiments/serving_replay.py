"""Trace replay fidelity + anomaly mining over the fleet experiments.

The observability claim behind ``repro.serving.replay``: because the
serving simulator is deterministic, an exported JSONL trace is a full
*benchmark* — scenario header + workload header + event stream — and
replaying it through a freshly built fleet must reproduce the recorded
:class:`~repro.serving.metrics.StepMetrics` fold bit-for-bit.  Any
drift means the build changed behaviour, and the drifting fields name
the subsystem that moved.

This experiment records the disaggregated-fleet stress runs from
:mod:`repro.experiments.serving_disagg` (the 10x-rate storm, plus the
collapsing static-2 baseline), round-trips each through
``dump_jsonl`` → ``load_jsonl`` → ``replay_trace``, and reports:

* replay fidelity — drifting metric fields (expected: none) and the
  replay rate in events/s;
* what the anomaly miner (:mod:`repro.serving.mining`) finds in the
  recordings — SLO-miss clusters on the overloaded static fleet,
  KV-transfer stalls and autoscaler flapping on the disaggregated one.

The headline (pinned by ``benchmarks/test_serving_replay.py``): every
replay is exact, and the miner surfaces at least three distinct
anomaly classes across the recordings.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.experiments import serving_disagg
from repro.experiments.common import ExperimentResult

#: (fleet kind, arrival-rate multiplier) recordings to replay and mine
RECORDINGS: Tuple[Tuple[str, float], ...] = (
    ("disagg", 10.0),
    ("static-2", 10.0),
)


def record(
    kind: str, rate_scale: float, path: str,
    n: int = serving_disagg.N_REQUESTS, seed: int = serving_disagg.SEED,
) -> Dict[str, float]:
    """Run one fleet and export the trace (scenario + workload headers)."""
    specs = serving_disagg.build_workload(rate_scale, n=n, seed=seed)
    return serving_disagg.run_fleet(kind, rate_scale, specs, export_path=path)


def replay_row(kind: str, rate_scale: float, path: str) -> Dict[str, object]:
    """Record → load → replay → mine; one summary row."""
    from repro.serving import load_jsonl, mine, replay_trace

    record(kind, rate_scale, path)
    trace = load_jsonl(path)
    report = replay_trace(trace)
    mined = mine(trace)
    return {
        "kind": kind,
        "rate_scale": rate_scale,
        "events": report.events_recorded,
        "exact": report.exact,
        "drift": list(report.drift),
        "events_per_second": report.events_per_second,
        "anomaly_classes": sorted(mined.anomaly_classes),
        "incidents": len(mined.incidents),
        "anomalies": len(mined.anomalies),
    }


def run(scale: Optional[float] = None) -> ExperimentResult:
    """Replay fidelity and mined anomalies for the fleet recordings."""
    rows: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory() as tmp:
        for kind, rate in RECORDINGS:
            path = str(Path(tmp) / f"{kind}-{rate:g}x.jsonl")
            rows.append(replay_row(kind, rate, path))

    classes = sorted({c for r in rows for c in r["anomaly_classes"]})
    result = ExperimentResult(
        name="Trace replay fidelity + anomaly mining on the fleet stress runs",
        description=(
            "Each recording is a full disaggregated-fleet run "
            f"({serving_disagg.N_REQUESTS} requests, "
            f"{serving_disagg.ALGO} everywhere) exported as JSONL with "
            "scenario and workload headers, reloaded, rebuilt, and "
            "re-served with recorded routing.  'exact' means the "
            "replayed StepMetrics fold matches the recording on every "
            "field; 'classes' lists the anomaly detectors that fired "
            "on the recording (clustered into scored incidents).  "
            f"Distinct classes across recordings: {', '.join(classes)}."
        ),
        data={"raw": rows, "anomaly_classes": classes},
    )
    result.tables.append(
        format_table(
            ["recording", "events", "exact", "drift", "replay ev/s",
             "incidents", "anomaly classes"],
            [
                [
                    f"{r['kind']}@{r['rate_scale']:g}x",
                    f"{r['events']}",
                    "yes" if r["exact"] else "NO",
                    f"{len(r['drift'])}",
                    f"{r['events_per_second']:.0f}",
                    f"{r['incidents']}",
                    ", ".join(r["anomaly_classes"]) or "-",
                ]
                for r in rows
            ],
            title="Replay + mining per recording:",
        )
    )
    return result
