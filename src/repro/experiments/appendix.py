"""Appendix experiments (Figures 8-18, Tables 9-11).

- Figures 8/10: Mistral-7B and LLaMA-13B throughput analyses (the 13B
  grid includes the KIVI OOM the paper notes on a single A6000).
- Figure 9: SnapKV integrated into the LLaMA-7B throughput analysis.
- Figures 11-14: tensor-parallelism sweeps for 7B/13B/Mistral/70B.
- Table 9 / Figures 15-16: Mistral length analyses (delegated to the
  main experiment modules with ``model="mistral"``).
- Figures 17-18 / Tables 10-11: Mistral negative-sample analyses.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import format_speedup, format_table
from repro.core.config import ExperimentScale, current_scale
from repro.experiments import (
    fig4_length_dist,
    fig5_latency_cdf,
    fig6_negative_threshold,
    fig7_negative_tasks,
    table5_length_ratio,
    table6_predictors,
    table7_negative_bench,
)
from repro.experiments.common import ALGOS, ALL_ALGOS, ExperimentResult
from repro.experiments.fig1_throughput import (
    BATCHES,
    run as fig1_run,
    throughput_grid,
)
from repro.experiments.table3_tp import TPS, tp_speedups

TP_ARCHS = (
    ("llama-7b", "a6000"),    # Fig. 11
    ("llama-13b", "a6000"),   # Fig. 12
    ("mistral-7b", "a6000"),  # Fig. 13
    ("llama-70b", "h800"),    # Fig. 14
)


def fig8_mistral() -> ExperimentResult:
    """Figure 8: Mistral-7B throughput analysis."""
    res = fig1_run(arch="mistral-7b", gpu="a6000")
    res.name = "Figure 8 — Mistral-7B throughput analysis"
    return res


def fig9_snapkv() -> ExperimentResult:
    """Figure 9: SnapKV added to the LLaMA-7B throughput grids."""
    algos = ("fp16", "snapkv-512", "stream-512", "h2o-512")
    res = ExperimentResult(
        name="Figure 9 — SnapKV throughput integration",
        description="SnapKV vs other sparse methods on LLaMA-7B/A6000.",
    )
    for stage, lens in (("prefill", (512, 2048)), ("decode", (1024, 4096))):
        grid = throughput_grid(stage, algos=algos, lengths=lens)
        res.data[f"{stage}_grid"] = grid
        rows = [
            [b, L] + [grid[a][(b, L)] for a in algos]
            for b in BATCHES
            for L in lens
        ]
        res.tables.append(
            format_table(
                ["batch", "len"] + list(algos),
                rows,
                title=f"{stage} throughput (tok/s):",
                precision=0,
            )
        )
    return res


def fig10_llama13b() -> ExperimentResult:
    """Figure 10: LLaMA-13B throughput (incl. the KIVI single-GPU OOM)."""
    res = fig1_run(arch="llama-13b", gpu="a6000")
    res.name = "Figure 10 — LLaMA-13B throughput analysis"
    return res


def tp_sweeps() -> ExperimentResult:
    """Figures 11-14: TP sweeps across architectures."""
    res = ExperimentResult(
        name="Figures 11-14 — tensor-parallelism sweeps",
        description=(
            "Relative prefill/decode speedups at TP 1/2/4 for "
            "LLaMA-7B/13B, Mistral-7B (A6000) and LLaMA-70B (H800)."
        ),
    )
    for arch, gpu in TP_ARCHS:
        for stage in ("prefill", "decode"):
            data = tp_speedups(stage, batch=4, length=2048, arch=arch, gpu=gpu)
            res.data[f"{arch}/{stage}"] = data
            rows = [
                [tp, f"{data[tp]['fp16']:.1f}"]
                + [format_speedup(data[tp][a]) for a in ALGOS]
                for tp in TPS
            ]
            res.tables.append(
                format_table(
                    ["TP", "FP16 (tok/s)"] + list(ALGOS),
                    rows,
                    title=f"{arch} on {gpu.upper()}, {stage}:",
                )
            )
    return res


def mistral_length_suite(scale: ExperimentScale = None) -> Sequence[ExperimentResult]:
    """Table 9 + Figures 15-16 (Mistral length analyses)."""
    scale = scale or current_scale()
    return (
        table5_length_ratio.run(scale, model="mistral"),
        fig4_length_dist.run(scale, model="mistral"),
        fig5_latency_cdf.run(scale, model="mistral"),
    )


def mistral_negative_suite(scale: ExperimentScale = None) -> Sequence[ExperimentResult]:
    """Figures 17-18 + Tables 10-11 (Mistral negatives + predictors)."""
    scale = scale or current_scale()
    return (
        fig6_negative_threshold.run(scale, model="mistral"),
        fig7_negative_tasks.run(scale, model="mistral"),
        table6_predictors.run(scale, model="mistral"),
        table7_negative_bench.run(scale, model="mistral"),
    )
