"""Table 3: relative speedup under tensor parallelism.

FP16 absolute throughput plus each algorithm's relative speedup for
prefill and decode at TP in {1, 2, 4}.  The paper's finding: TP lifts
absolute throughput but *shrinks* the relative benefit of KV
compression (per-GPU KV traffic falls while fixed compression overheads
do not).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.reporting import format_speedup, format_table
from repro.experiments.common import (
    ALGOS,
    ExperimentResult,
    comp_spec,
    comp_specs,
    cost_model,
)

TPS = (1, 2, 4)


def tp_speedups(
    stage: str,
    batch: int = 4,
    length: int = 2048,
    arch: str = "llama-7b",
    gpu: str = "a6000",
    engine: str = "lmdeploy",
    tps: Sequence[int] = TPS,
    algos: Sequence[str] = ALGOS,
) -> Dict[int, Dict[str, float]]:
    """tp -> {"fp16": tok/s, algo: relative speedup}."""
    fp16 = comp_spec("fp16")
    specs = comp_specs(algos)
    out: Dict[int, Dict[str, float]] = {}
    for tp in tps:
        m = cost_model(arch, gpu, engine, tp)
        if stage == "prefill":
            base = m.prefill_throughput(batch, length, fp16)
            row = {
                a: (m.prefill_throughput(batch, length, s) / base if base else 0.0)
                for a, s in specs.items()
            }
        else:
            base = m.decode_throughput(batch, length, fp16)
            row = {
                a: (m.decode_throughput(batch, length, s) / base if base else 0.0)
                for a, s in specs.items()
            }
        row["fp16"] = base
        out[tp] = row
    return out


def run(batch: int = 4, length: int = 2048) -> ExperimentResult:
    """Reproduce Table 3."""
    res = ExperimentResult(
        name="Table 3 — relative speedup across tensor parallelism",
        description=(
            f"LLaMA-7B on A6000/LMDeploy, batch {batch}, length {length}. "
            "FP16 column is absolute tokens/s; algorithm columns are "
            "speedups over FP16 at the same TP."
        ),
    )
    for stage in ("prefill", "decode"):
        data = tp_speedups(stage, batch, length)
        res.data[stage] = data
        rows = [
            [tp, f"{data[tp]['fp16']:.2f}"]
            + [format_speedup(data[tp][a]) for a in ALGOS]
            for tp in TPS
        ]
        res.tables.append(
            format_table(
                ["TP", "FP16 (tok/s)"] + list(ALGOS),
                rows,
                title=f"{stage}:",
            )
        )
    return res
