"""Figure 6 (and appendix Fig. 17): negative samples vs threshold.

Number of negative samples as the relative-loss threshold theta grows,
for each quantization and sparsity method alone and for the combined
sets "Quant (C)" = {KIVI, GEAR} and "Sparse (C)" = {H2O, StreamingLLM}.
Combining algorithms reduces — but does not eliminate — negatives
(Observation 5).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.core.config import ExperimentScale, current_scale
from repro.experiments.common import ALL_ALGOS, ExperimentResult
from repro.experiments.genruns import longbench_eval
from repro.tools.negative_sampler import NegativeSampleAnalysis, ScoredSample

THETAS = (0.05, 0.10, 0.20, 0.30, 0.40)

ALGO_SETS = {
    "KIVI": ["kivi-4"],
    "GEAR": ["gear-4"],
    "Quant (C)": ["kivi-4", "gear-4"],
    "H2O": ["h2o-512"],
    "Stream": ["stream-512"],
    "Sparse (C)": ["h2o-512", "stream-512"],
}


def build_analysis(
    scale: ExperimentScale, model: str = "llama"
) -> NegativeSampleAnalysis:
    """Negative-sample analysis over the LongBench-sim evaluation."""
    evals = longbench_eval(scale, ALL_ALGOS, model)
    baseline = {
        r.sample_id: ScoredSample(r.sample_id, r.task, r.score)
        for r in evals["fp16"]
    }
    by_algo = {
        algo: {
            r.sample_id: ScoredSample(r.sample_id, r.task, r.score)
            for r in records
        }
        for algo, records in evals.items()
        if algo != "fp16"
    }
    return NegativeSampleAnalysis(baseline, by_algo)


def run(
    scale: ExperimentScale = None, model: str = "llama"
) -> ExperimentResult:
    """Reproduce Figure 6."""
    scale = scale or current_scale()
    analysis = build_analysis(scale, model)
    counts = analysis.counts_by_threshold(ALGO_SETS, THETAS)
    res = ExperimentResult(
        name=f"Figure 6 — negative samples vs threshold ({model})",
        description=(
            f"{len(analysis.baseline)} LongBench-sim samples "
            f"({len(analysis.benign_ids)} benign); counts of negatives "
            "per threshold for single algorithms and combined sets."
        ),
        data={"counts": counts, "analysis": analysis},
    )
    rows = [
        [label] + list(series) for label, series in counts.items()
    ]
    res.tables.append(
        format_table(
            ["algorithm set"] + [f"theta={t:.0%}" for t in THETAS], rows
        )
    )
    return res
