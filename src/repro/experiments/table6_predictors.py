"""Table 6 (and appendix Table 10): prediction accuracy of the tools.

- Throughput predictor: profile-grid interpolation evaluated on
  off-grid (stage, batch, length) points, per algorithm.
- Length predictor: per-algorithm bucket classifiers trained on
  ShareGPT-sim generations, held-out accuracy per the paper's
  ``1 - |L_pred - L_gt| / L_gt`` definition.

The paper reports >=85% for both tools across algorithms.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.reporting import format_table
from repro.core.config import ExperimentScale, current_scale
from repro.experiments.common import (
    ALL_ALGOS,
    ExperimentResult,
    comp_specs,
    cost_model,
    functional_model,
)
from repro.experiments.genruns import (
    sharegpt_lengths_by_algo,
    sharegpt_requests,
)
from repro.tools.length_predictor import train_per_algorithm
from repro.tools.throughput_predictor import ThroughputPredictor

EVAL_POINTS = [
    ("decode", 3, 384),
    ("decode", 6, 1536),
    ("decode", 12, 768),
    ("decode", 24, 3072),
    ("prefill", 3, 384),
    ("prefill", 6, 1536),
    ("prefill", 12, 768),
]


def throughput_accuracy(
    algos: Sequence[str] = ALL_ALGOS,
    arch: str = "llama-7b",
    gpu: str = "a6000",
    engine: str = "lmdeploy",
) -> Dict[str, float]:
    """Per-algorithm throughput-predictor accuracy on off-grid points."""
    predictor = ThroughputPredictor(
        cost_model(arch, gpu, engine), comp_specs(algos)
    ).profile()
    return predictor.accuracy(EVAL_POINTS)


def length_accuracy(
    scale: ExperimentScale, model: str = "llama",
    algos: Sequence[str] = ALL_ALGOS,
) -> Dict[str, float]:
    """Per-algorithm length-predictor held-out accuracy."""
    reqs = sharegpt_requests(scale)
    lengths = sharegpt_lengths_by_algo(scale, algos, model)
    trained = train_per_algorithm(
        [r.prompt for r in reqs],
        lengths,
        tokenizer=functional_model(model).tokenizer,
    )
    return {a: float(trained[a]["accuracy"]) for a in algos}


def run(
    scale: ExperimentScale = None, model: str = "llama"
) -> ExperimentResult:
    """Reproduce Table 6."""
    scale = scale or current_scale()
    thr = throughput_accuracy()
    lng = length_accuracy(scale, model)
    res = ExperimentResult(
        name=f"Table 6 — tool prediction accuracy ({model})",
        description="Accuracy of the throughput and length predictors.",
        data={"throughput": thr, "length": lng},
    )
    cols = list(ALL_ALGOS)
    rows = [
        ["Throughput Predictor"] + [f"{100 * thr[a]:.1f}%" for a in cols],
        ["Length Predictor"] + [f"{100 * lng[a]:.1f}%" for a in cols],
    ]
    res.tables.append(format_table(["Tool"] + cols, rows))
    return res
