"""Cached generation runs shared by the data-driven experiments.

Tables 4/5/6/8 and Figures 4/5 all consume the *same* ShareGPT-sim
generations, and Figures 6/7 + Table 7 the same LongBench-sim
evaluations; this module runs each configuration once per process and
memoizes the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.evaluation import EvalRecord, evaluate_suite
from repro.compression.registry import create
from repro.core.config import ExperimentScale
from repro.datasets.longbench import LongBenchSim, Sample
from repro.datasets.sharegpt import Request, ShareGPTSim
from repro.experiments.common import ALL_ALGOS, functional_model
from repro.model.generate import generate
from repro.model.sampling import Sampler

_SHAREGPT_CACHE: Dict[Tuple, "ShareGPTRun"] = {}
_LONGBENCH_CACHE: Dict[Tuple, Dict[str, List[EvalRecord]]] = {}
_REQUEST_CACHE: Dict[Tuple, List[Request]] = {}
_SAMPLE_CACHE: Dict[Tuple, List[Sample]] = {}


@dataclass
class ShareGPTRun:
    """Generation outcome of one (algorithm, temperature) configuration."""

    label: str
    lengths: np.ndarray
    responses: List[List[int]]
    hit_max: np.ndarray


def sharegpt_requests(scale: ExperimentScale, seed: int = 3) -> List[Request]:
    """The shared ShareGPT-sim request set for a scale."""
    key = (scale.name, seed)
    if key not in _REQUEST_CACHE:
        _REQUEST_CACHE[key] = ShareGPTSim(seed=seed).build(
            scale.sharegpt_requests
        )
    return _REQUEST_CACHE[key]


def sharegpt_run(
    scale: ExperimentScale,
    algo: str = "fp16",
    temperature: float = 1.0,
    model: str = "llama",
    seed: int = 3,
) -> ShareGPTRun:
    """Generate (once) all scale requests under one configuration.

    Requests are processed in prompt-length-sorted batches; outputs are
    returned in the original request order.
    """
    label = f"{model}/{algo}/T={temperature}"
    key = (scale.name, model, algo, float(temperature), seed)
    if key in _SHAREGPT_CACHE:
        return _SHAREGPT_CACHE[key]
    m = functional_model(model)
    reqs = sharegpt_requests(scale, seed)
    order = sorted(range(len(reqs)), key=lambda i: reqs[i].prompt_len)
    lengths = np.zeros(len(reqs), dtype=np.int64)
    hit_max = np.zeros(len(reqs), dtype=bool)
    responses: List[List[int]] = [[] for _ in reqs]
    comp = None if algo == "fp16" else create(algo)
    # top-p 0.95 mirrors production sampling defaults: clean retrievals
    # terminate crisply while degraded (flattened) distributions still
    # wander — the paper's verbosity effect survives nucleus truncation
    sampler = Sampler(temperature=temperature, top_p=0.95, seed=seed + 11)
    for s in range(0, len(order), scale.batch_size):
        idx = order[s : s + scale.batch_size]
        out = generate(
            m,
            [reqs[i].prompt for i in idx],
            compressor=comp,
            sampler=sampler,
            max_new_tokens=scale.max_new_tokens,
        )
        for k, i in enumerate(idx):
            lengths[i] = out.response_lengths[k]
            hit_max[i] = out.hit_max[k]
            responses[i] = out.sequences[k]
    run = ShareGPTRun(
        label=label, lengths=lengths, responses=responses, hit_max=hit_max
    )
    _SHAREGPT_CACHE[key] = run
    return run


def sharegpt_lengths_by_algo(
    scale: ExperimentScale,
    algos: Sequence[str] = ALL_ALGOS,
    model: str = "llama",
) -> Dict[str, np.ndarray]:
    """Response lengths per algorithm at T=1 (router / predictor input)."""
    return {
        a: sharegpt_run(scale, a, 1.0, model).lengths for a in algos
    }


# ----------------------------------------------------------------------
def longbench_samples(
    scale: ExperimentScale, seed: int = 0
) -> List[Sample]:
    """The shared LongBench-sim sample set for a scale."""
    key = (scale.name, seed)
    if key not in _SAMPLE_CACHE:
        _SAMPLE_CACHE[key] = LongBenchSim(seed=seed).build(
            scale.longbench_per_task
        )
    return _SAMPLE_CACHE[key]


def longbench_eval(
    scale: ExperimentScale,
    algos: Sequence[str] = ALL_ALGOS,
    model: str = "llama",
    seed: int = 0,
) -> Dict[str, List[EvalRecord]]:
    """Greedy-decoded LongBench-sim evaluation, cached per configuration."""
    key = (scale.name, model, tuple(algos), seed)
    if key in _LONGBENCH_CACHE:
        return _LONGBENCH_CACHE[key]
    out = evaluate_suite(
        functional_model(model),
        longbench_samples(scale, seed),
        algos,
        batch_size=scale.batch_size,
        max_new_tokens=min(48, scale.max_new_tokens),
    )
    _LONGBENCH_CACHE[key] = out
    return out


def clear_caches() -> None:
    """Drop all memoized runs (tests use this for isolation)."""
    _SHAREGPT_CACHE.clear()
    _LONGBENCH_CACHE.clear()
    _REQUEST_CACHE.clear()
    _SAMPLE_CACHE.clear()
