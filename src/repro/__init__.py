"""Reproduction of "Rethinking Key-Value Cache Compression Techniques
for Large Language Model Serving" (MLSys 2025).

Top-level convenience exports; see the subpackages for the full API:

- :mod:`repro.core`        — the public pipeline API
- :mod:`repro.model`       — functional NumPy transformer (circuits)
- :mod:`repro.compression` — KIVI / GEAR / H2O / StreamingLLM / SnapKV
- :mod:`repro.kvcache`     — paged & quantized KV-cache structures
- :mod:`repro.hardware`    — GPU specs, roofline, memory model
- :mod:`repro.engines`     — TRL / TRL+FA / LMDeploy cost models
- :mod:`repro.serving`     — serving simulator and request router
- :mod:`repro.datasets`    — ShareGPT-sim and LongBench-sim
- :mod:`repro.tools`       — throughput/length predictors, negatives
- :mod:`repro.analysis`    — evaluation, length stats, reporting
- :mod:`repro.experiments` — one module per paper table/figure
"""

from repro.core import (
    CompressedGenerationPipeline,
    ExperimentScale,
    ServingEstimate,
    current_scale,
)
from repro.compression import PAPER_ALGORITHMS, create

__version__ = "1.0.0"

__all__ = [
    "CompressedGenerationPipeline",
    "ExperimentScale",
    "ServingEstimate",
    "current_scale",
    "PAPER_ALGORITHMS",
    "create",
    "__version__",
]
