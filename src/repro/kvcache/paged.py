"""PagedAttention-style block manager with automatic prefix caching.

KV storage is carved into fixed-size blocks handed to sequences on
demand and tracked through per-sequence block tables — vLLM/LMDeploy's
design.  Growth never copies; memory returns on free.

With ``prefix_caching=True`` the store is *content-addressed* the way
vLLM's automatic prefix caching and SGLang's RadixAttention are: every
full block whose token ids are known gets a chained hash (its content
plus the hash of the block before it), ref-counted sharing lets a new
sequence adopt another sequence's identical prompt prefix without
allocating or copying, and blocks whose last reference drops are
*retained* in an LRU pool so a later identical prompt still hits.  The
LRU pool is reclaimed on demand when the free list runs dry, so caching
never shrinks usable capacity.

Two subtleties the paper highlights (Section 3.1.2) are modelled
explicitly:

- Sparse eviction punches holes into blocks, and a block is only
  reclaimable when *every* slot in it is dead — sparsity-induced "free"
  memory shows up as internal fragmentation until whole blocks drain.
  ``compact_sequence`` models the explicit gather-copy an implementation
  must run to get that memory back, at the cost of copied tokens.
- Compression breaks shareability: a block touched by sparse eviction
  (``evict``) or in-place quantization (``mark_mutated``) diverges from
  the content its hash promises, so its hash is invalidated — and if the
  block is shared, the mutating sequence first gets a private
  copy-on-write duplicate (counted in ``copied_tokens``) so other
  holders keep the pristine prefix.  Compressed KV therefore never
  participates in prefix reuse, exactly the friction between
  compression and paged sharing the paper describes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.kvcache.base import CapacityError, KVCacheStore, StoreStats

#: chained content key of one full block: (previous block's key, token ids)
BlockKey = Tuple[Optional[tuple], Tuple[int, ...]]


@dataclass
class _Block:
    """One fixed-size block: live slots, sharing state, content hash."""

    live_slots: Set[int] = field(default_factory=set)
    used_slots: int = 0  # high-water mark of appended slots
    ref_count: int = 1
    key: Optional[BlockKey] = None  # set only for full, unmutated blocks


@dataclass
class _PagedSeq:
    blocks: List[int] = field(default_factory=list)
    length: int = 0
    live: int = 0  # running live-slot count (this sequence's view)
    #: chained keys of the leading full blocks (for hash-chain extension)
    chain: List[BlockKey] = field(default_factory=list)
    #: token ids in the open tail block; ``None`` once the chain is broken
    tail_ids: Optional[List[int]] = field(default_factory=list)


class PagedStore(KVCacheStore):
    """Fixed-block allocator with block tables, hole tracking, and
    optional content-addressed prefix sharing."""

    def __init__(
        self,
        capacity_tokens: int,
        block_size: int = 16,
        prefix_caching: bool = False,
        telemetry=None,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if capacity_tokens < block_size:
            raise ValueError("capacity must hold at least one block")
        self.block_size = block_size
        self.n_blocks = capacity_tokens // block_size
        self.prefix_caching = prefix_caching
        # duck-typed sink (repro.serving.telemetry.Telemetry); kvcache
        # stays import-free of the serving package
        self.telemetry = telemetry
        self._free: List[int] = list(range(self.n_blocks))
        self._blocks: Dict[int, _Block] = {}
        self._seqs: Dict[str, _PagedSeq] = {}
        self._copied = 0
        # running counters (stats() never recounts; see recount_stats())
        self._live = 0  # live slots across referenced (ref_count>0) blocks
        # content-addressed state
        self._index: Dict[BlockKey, int] = {}  # block key -> block id
        self._lru: "OrderedDict[int, None]" = OrderedDict()  # cached, ref==0
        self.prefix_hits = 0
        self.reused_tokens = 0
        self.cached_block_evictions = 0

    def _publish(self) -> None:
        """Push occupancy gauges to the attached telemetry sink, if any."""
        if self.telemetry is not None:
            self.telemetry.sample_store(self)

    # ------------------------------------------------------------------
    # block lifecycle
    # ------------------------------------------------------------------
    def _alloc_block(self) -> int:
        if not self._free and self._lru:
            # reclaim the least-recently-released cached block
            old, _ = self._lru.popitem(last=False)
            blk = self._blocks.pop(old)
            del self._index[blk.key]
            self._free.append(old)
            self.cached_block_evictions += 1
        if not self._free:
            raise CapacityError("no free blocks")
        bid = self._free.pop()
        self._blocks[bid] = _Block()
        return bid

    def _decref(self, bid: int) -> None:
        """Drop one reference; retain hashed blocks in the LRU pool."""
        blk = self._blocks[bid]
        blk.ref_count -= 1
        if blk.ref_count > 0:
            return
        self._live -= len(blk.live_slots)
        if blk.key is not None:
            self._lru[bid] = None  # cached for future prefix hits
        else:
            del self._blocks[bid]
            self._free.append(bid)

    def _share(self, bid: int, seq: _PagedSeq) -> None:
        """Add an existing (possibly cached) block to a sequence."""
        blk = self._blocks[bid]
        if blk.ref_count == 0:
            del self._lru[bid]  # revived from the cached pool
            self._live += len(blk.live_slots)
        blk.ref_count += 1
        seq.blocks.append(bid)
        seq.length += self.block_size
        seq.live += self.block_size

    def _unhash(self, bid: int) -> None:
        blk = self._blocks[bid]
        if blk.key is not None:
            self._index.pop(blk.key, None)
            blk.key = None

    def _privatize(self, seq: _PagedSeq, block_idx: int) -> int:
        """Copy-on-write: give ``seq`` a private copy of a shared block."""
        old_bid = seq.blocks[block_idx]
        old = self._blocks[old_bid]
        new_bid = self._alloc_block()
        new = self._blocks[new_bid]
        new.live_slots = set(old.live_slots)
        new.used_slots = old.used_slots
        seq.blocks[block_idx] = new_bid
        copied = len(new.live_slots)
        self._live += copied
        self._copied += copied
        self._decref(old_bid)
        return new_bid

    def _append_slots(self, seq: _PagedSeq, n: int) -> None:
        """Bulk-fill ``n`` slots: whole blocks at a time, O(blocks)."""
        bs = self.block_size
        while n > 0:
            slot = seq.length % bs
            if slot == 0:
                seq.blocks.append(self._alloc_block())
            blk = self._blocks[seq.blocks[-1]]
            take = min(n, bs - slot)
            blk.live_slots.update(range(slot, slot + take))
            blk.used_slots = max(blk.used_slots, slot + take)
            seq.length += take
            seq.live += take
            self._live += take
            n -= take

    # ------------------------------------------------------------------
    # content addressing
    # ------------------------------------------------------------------
    @staticmethod
    def _block_keys(
        ids: Tuple[int, ...], block_size: int
    ) -> List[BlockKey]:
        """Chained keys of every *full* block covering ``ids``."""
        keys: List[BlockKey] = []
        prev: Optional[tuple] = None
        for i in range(len(ids) // block_size):
            key: BlockKey = (prev, ids[i * block_size:(i + 1) * block_size])
            keys.append(key)
            prev = key
        return keys

    def cached_prefix(self, token_ids: Sequence[int]) -> int:
        """Tokens of ``token_ids`` resident as cached full blocks.

        Pure query: no reference counts change and LRU order is
        untouched (routers probe every instance per arrival).
        """
        if not self.prefix_caching:
            return 0
        ids = tuple(int(t) for t in token_ids)
        matched = 0
        for key in self._block_keys(ids, self.block_size):
            if key not in self._index:
                break
            matched += self.block_size
        return matched

    def _register(self, seq: _PagedSeq, block_idx: int, key: BlockKey) -> None:
        """Hash a freshly-filled full block (idempotent on collisions)."""
        bid = seq.blocks[block_idx]
        if key not in self._index:
            self._blocks[bid].key = key
            self._index[key] = bid

    # ------------------------------------------------------------------
    # sequence API
    # ------------------------------------------------------------------
    def add_sequence(
        self,
        seq_id: str,
        prompt_tokens: int,
        token_ids: Optional[Sequence[int]] = None,
    ) -> int:
        """Reserve storage for a new sequence; returns tokens *reused*
        from the prefix cache (always 0 without ``prefix_caching`` or
        ``token_ids``)."""
        if seq_id in self._seqs:
            raise KeyError(f"sequence {seq_id!r} already present")
        if prompt_tokens < 1:
            raise ValueError("prompt_tokens must be positive")
        seq = _PagedSeq()
        reused = 0
        try:
            if self.prefix_caching and token_ids is not None:
                ids = tuple(int(t) for t in token_ids)
                if len(ids) != prompt_tokens:
                    raise ValueError(
                        "token_ids must cover exactly prompt_tokens"
                    )
                keys = self._block_keys(ids, self.block_size)
                for key in keys:
                    bid = self._index.get(key)
                    if bid is None:
                        break
                    self._share(bid, seq)
                    reused += self.block_size
                self._append_slots(seq, prompt_tokens - seq.length)
                # hash the freshly-filled full blocks so later arrivals hit
                for i in range(reused // self.block_size, len(keys)):
                    self._register(seq, i, keys[i])
                seq.chain = keys
                seq.tail_ids = list(ids[len(keys) * self.block_size:])
            else:
                self._append_slots(seq, prompt_tokens)
                seq.tail_ids = None  # unknown content: chain never starts
        except CapacityError:
            for bid in seq.blocks:
                self._decref(bid)
            raise
        self._seqs[seq_id] = seq
        if reused:
            self.prefix_hits += 1
            self.reused_tokens += reused
        self._publish()
        return reused

    def append(
        self,
        seq_id: str,
        n_tokens: int = 1,
        token_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Extend a sequence; with ``token_ids`` (one id per appended
        token) the hash chain keeps growing, so decode output becomes a
        cacheable prefix for the next conversation turn."""
        seq = self._seqs[seq_id]
        self._append_slots(seq, n_tokens)
        try:
            if not self.prefix_caching or seq.tail_ids is None:
                return
            if token_ids is None or len(token_ids) != n_tokens:
                seq.tail_ids = None  # content unknown from here on
                return
            seq.tail_ids.extend(int(t) for t in token_ids)
            bs = self.block_size
            while len(seq.tail_ids) >= bs:
                prev = seq.chain[-1] if seq.chain else None
                key: BlockKey = (prev, tuple(seq.tail_ids[:bs]))
                self._register(seq, len(seq.chain), key)
                seq.chain.append(key)
                del seq.tail_ids[:bs]
        finally:
            self._publish()

    def _mutate(
        self, seq_id: str, positions: List[int], punch_hole: bool
    ) -> None:
        seq = self._seqs[seq_id]
        bs = self.block_size
        for pos in positions:
            if not 0 <= pos < seq.length:
                raise ValueError(f"position {pos} out of range")
            b = pos // bs
            bid = seq.blocks[b]
            blk = self._blocks[bid]
            if blk.ref_count > 1:
                # shared: mutate a private copy, leave peers pristine
                bid = self._privatize(seq, b)
                blk = self._blocks[bid]
            else:
                self._unhash(bid)  # content diverges: no longer shareable
            if b < len(seq.chain):
                del seq.chain[b:]
            seq.tail_ids = None  # chain can never be extended again
            if punch_hole:
                slot = pos % bs
                if slot in blk.live_slots:
                    blk.live_slots.discard(slot)
                    self._live -= 1
                    seq.live -= 1

    def evict(self, seq_id: str, positions: List[int]) -> None:
        """Mark slots dead (sparse eviction).

        Dead blocks are *not* auto-reclaimed: the position -> block
        mapping must stay stable for future appends and evictions, so
        memory only returns via :meth:`compact_sequence` or :meth:`free`
        — precisely the management friction between sparse eviction and
        PagedAttention the paper describes.  An evicted block loses its
        content hash (it no longer stores what the hash promises), and a
        *shared* block is copy-on-write duplicated first so other
        sequences keep the unmutated prefix.
        """
        self._mutate(seq_id, positions, punch_hole=True)
        self._publish()

    def mark_mutated(self, seq_id: str, positions: List[int]) -> None:
        """Record in-place mutation (e.g. quantization write-back) of
        the given positions: the touched blocks keep their slots but
        lose shareability — hash invalidated, shared blocks privatized
        via copy-on-write.  This is the explicit compression/prefix-
        caching friction of the paper's Section 3.1.2."""
        self._mutate(seq_id, positions, punch_hole=False)
        self._publish()

    def compact_sequence(self, seq_id: str) -> int:
        """Gather live tokens into dense blocks; returns tokens copied.

        Compaction rewrites the layout, so the compacted sequence's
        blocks are unhashed (their content no longer aligns with any
        token-id block boundary); shared blocks are merely de-referenced
        and survive for their other holders.
        """
        seq = self._seqs[seq_id]
        live = seq.live
        for bid in seq.blocks:
            self._decref(bid)
        seq.blocks = []
        seq.length = 0
        seq.live = 0
        seq.chain = []
        seq.tail_ids = None
        self._append_slots(seq, live)
        self._copied += live
        self._publish()
        return live

    def free(self, seq_id: str) -> None:
        """Release a sequence.  Hashed blocks whose last reference drops
        are retained in the LRU cached pool for future prefix hits."""
        seq = self._seqs.pop(seq_id)
        for bid in seq.blocks:
            self._decref(bid)
        self._publish()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def sequence_tokens(self, seq_id: str) -> int:
        return self._seqs[seq_id].live

    def sequence_blocks(self, seq_id: str) -> int:
        """Blocks currently held by a sequence."""
        return len(self._seqs[seq_id].blocks)

    def block_ref_count(self, seq_id: str, block_idx: int) -> int:
        """Reference count of one of a sequence's blocks."""
        return self._blocks[self._seqs[seq_id].blocks[block_idx]].ref_count

    @property
    def cached_blocks(self) -> int:
        """Unreferenced blocks retained for prefix reuse."""
        return len(self._lru)

    def stats(self) -> StoreStats:
        return StoreStats(
            allocated_tokens=len(self._blocks) * self.block_size,
            live_tokens=self._live,
            capacity_tokens=self.n_blocks * self.block_size,
            copied_tokens=self._copied,
            cached_tokens=len(self._lru) * self.block_size,
        )

    def recount_stats(self) -> StoreStats:
        """Slow recount from the block tables (test oracle for the
        running counters maintained by :meth:`stats`)."""
        live = sum(
            len(b.live_slots)
            for b in self._blocks.values()
            if b.ref_count > 0
        )
        return StoreStats(
            allocated_tokens=len(self._blocks) * self.block_size,
            live_tokens=live,
            capacity_tokens=self.n_blocks * self.block_size,
            copied_tokens=self._copied,
            cached_tokens=len(self._lru) * self.block_size,
        )

    def recount_sequence_tokens(self, seq_id: str) -> int:
        """Slow per-sequence live recount (test oracle)."""
        seq = self._seqs[seq_id]
        return sum(len(self._blocks[bid].live_slots) for bid in seq.blocks)
