"""PagedAttention-style block manager.

KV storage is carved into fixed-size blocks handed to sequences on
demand and tracked through per-sequence block tables — vLLM/LMDeploy's
design.  Growth never copies; memory returns on free.

The subtlety the paper highlights (Section 3.1.2): PagedAttention
assumes cache length grows monotonically.  Sparse eviction punches holes
into blocks, and a block is only reclaimable when *every* slot in it is
dead — so sparsity-induced "free" memory shows up as internal
fragmentation until whole blocks drain.  ``compact_sequence`` models the
explicit compaction (gather-copy) an implementation must run to get that
memory back, at the cost of copied tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.kvcache.base import CapacityError, KVCacheStore, StoreStats


@dataclass
class _Block:
    """One fixed-size block: which slots are live."""

    live_slots: Set[int] = field(default_factory=set)
    used_slots: int = 0  # high-water mark of appended slots


@dataclass
class _PagedSeq:
    blocks: List[int] = field(default_factory=list)
    length: int = 0


class PagedStore(KVCacheStore):
    """Fixed-block allocator with block tables and hole tracking."""

    def __init__(self, capacity_tokens: int, block_size: int = 16) -> None:
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if capacity_tokens < block_size:
            raise ValueError("capacity must hold at least one block")
        self.block_size = block_size
        self.n_blocks = capacity_tokens // block_size
        self._free: List[int] = list(range(self.n_blocks))
        self._blocks: Dict[int, _Block] = {}
        self._seqs: Dict[str, _PagedSeq] = {}
        self._copied = 0

    # ------------------------------------------------------------------
    def _alloc_block(self) -> int:
        if not self._free:
            raise CapacityError("no free blocks")
        bid = self._free.pop()
        self._blocks[bid] = _Block()
        return bid

    def _release_block(self, bid: int) -> None:
        del self._blocks[bid]
        self._free.append(bid)

    def _append_slots(self, seq: _PagedSeq, n: int) -> None:
        for _ in range(n):
            slot = seq.length % self.block_size
            if slot == 0:
                seq.blocks.append(self._alloc_block())
            blk = self._blocks[seq.blocks[-1]]
            blk.live_slots.add(slot)
            blk.used_slots = max(blk.used_slots, slot + 1)
            seq.length += 1

    # ------------------------------------------------------------------
    def add_sequence(self, seq_id: str, prompt_tokens: int) -> None:
        if seq_id in self._seqs:
            raise KeyError(f"sequence {seq_id!r} already present")
        if prompt_tokens < 1:
            raise ValueError("prompt_tokens must be positive")
        seq = _PagedSeq()
        try:
            self._append_slots(seq, prompt_tokens)
        except CapacityError:
            for bid in seq.blocks:
                self._release_block(bid)
            raise
        self._seqs[seq_id] = seq

    def append(self, seq_id: str, n_tokens: int = 1) -> None:
        self._append_slots(self._seqs[seq_id], n_tokens)

    def evict(self, seq_id: str, positions: List[int]) -> None:
        """Mark slots dead.

        Dead blocks are *not* auto-reclaimed: the position -> block
        mapping must stay stable for future appends and evictions, so
        memory only returns via :meth:`compact_sequence` or :meth:`free`
        — precisely the management friction between sparse eviction and
        PagedAttention the paper describes.
        """
        seq = self._seqs[seq_id]
        for pos in positions:
            if not 0 <= pos < seq.length:
                raise ValueError(f"position {pos} out of range")
            bid = seq.blocks[pos // self.block_size]
            self._blocks[bid].live_slots.discard(pos % self.block_size)

    def compact_sequence(self, seq_id: str) -> int:
        """Gather live tokens into dense blocks; returns tokens copied."""
        seq = self._seqs[seq_id]
        live = sum(
            len(self._blocks[bid].live_slots) for bid in seq.blocks
        )
        for bid in seq.blocks:
            self._release_block(bid)
        new_seq = _PagedSeq()
        self._append_slots(new_seq, live)
        seq.blocks = new_seq.blocks
        seq.length = new_seq.length
        self._copied += live
        return live

    def free(self, seq_id: str) -> None:
        seq = self._seqs.pop(seq_id)
        for bid in seq.blocks:
            self._release_block(bid)

    def sequence_tokens(self, seq_id: str) -> int:
        seq = self._seqs[seq_id]
        return sum(len(self._blocks[bid].live_slots) for bid in seq.blocks)

    def sequence_blocks(self, seq_id: str) -> int:
        """Blocks currently held by a sequence."""
        return len(self._seqs[seq_id].blocks)

    def stats(self) -> StoreStats:
        allocated = len(self._blocks) * self.block_size
        live = sum(len(b.live_slots) for b in self._blocks.values())
        return StoreStats(
            allocated_tokens=allocated,
            live_tokens=live,
            capacity_tokens=self.n_blocks * self.block_size,
            copied_tokens=self._copied,
        )
