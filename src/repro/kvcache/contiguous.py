"""Contiguous per-sequence KV storage (TRL-style).

Each sequence owns one contiguous region sized to a power-of-two of its
current length; growth past the reservation reallocates and *copies*
(the hidden cost eager engines pay), and eviction cannot return memory
because the region must stay contiguous — only the live-token count
drops.  This store makes the baseline for the paged-attention ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.kvcache.base import CapacityError, KVCacheStore, StoreStats


def _round_up_pow2(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


@dataclass
class _Seq:
    length: int
    live: int
    reserved: int


class ContiguousStore(KVCacheStore):
    """Power-of-two contiguous allocator with copy-on-grow."""

    def __init__(self, capacity_tokens: int) -> None:
        if capacity_tokens < 1:
            raise ValueError("capacity_tokens must be positive")
        self.capacity_tokens = capacity_tokens
        self._seqs: Dict[str, _Seq] = {}
        self._reserved = 0
        self._copied = 0

    def _reserve(self, n: int) -> None:
        if self._reserved + n > self.capacity_tokens:
            raise CapacityError(
                f"needs {n} tokens, {self.capacity_tokens - self._reserved} free"
            )
        self._reserved += n

    def add_sequence(self, seq_id: str, prompt_tokens: int) -> None:
        if seq_id in self._seqs:
            raise KeyError(f"sequence {seq_id!r} already present")
        if prompt_tokens < 1:
            raise ValueError("prompt_tokens must be positive")
        reserved = _round_up_pow2(prompt_tokens)
        self._reserve(reserved)
        self._seqs[seq_id] = _Seq(
            length=prompt_tokens, live=prompt_tokens, reserved=reserved
        )

    def append(self, seq_id: str, n_tokens: int = 1) -> None:
        s = self._seqs[seq_id]
        s.length += n_tokens
        s.live += n_tokens
        if s.length > s.reserved:
            new_reserved = _round_up_pow2(s.length)
            self._reserve(new_reserved - s.reserved)
            # reallocation copies the whole existing region
            self._copied += s.length - n_tokens
            s.reserved = new_reserved

    def evict(self, seq_id: str, positions: List[int]) -> None:
        s = self._seqs[seq_id]
        n = len(positions)
        if n > s.live:
            raise ValueError("evicting more tokens than live")
        s.live -= n  # memory cannot shrink: region stays contiguous

    def free(self, seq_id: str) -> None:
        s = self._seqs.pop(seq_id)
        self._reserved -= s.reserved

    def sequence_tokens(self, seq_id: str) -> int:
        return self._seqs[seq_id].live

    def stats(self) -> StoreStats:
        return StoreStats(
            allocated_tokens=self._reserved,
            live_tokens=sum(s.live for s in self._seqs.values()),
            capacity_tokens=self.capacity_tokens,
            copied_tokens=self._copied,
        )
