"""Systems-level KV-cache stores: contiguous, paged, dual-pool quantized."""

from repro.kvcache.base import CapacityError, KVCacheStore, StoreStats
from repro.kvcache.contiguous import ContiguousStore
from repro.kvcache.paged import PagedStore
from repro.kvcache.quantized import QuantizedPagedStore

__all__ = [
    "CapacityError",
    "KVCacheStore",
    "StoreStats",
    "ContiguousStore",
    "PagedStore",
    "QuantizedPagedStore",
]
