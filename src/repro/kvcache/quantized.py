"""Dual-pool storage for window-based KV quantization.

Window-based quantizers (KIVI, GEAR) keep the most recent ``R`` tokens
in full precision and the aged body quantized.  Under PagedAttention
that means *two* paged pools with different bytes-per-slot, plus a
steady migration of tokens from the FP16 pool into the quantized pool as
they age out of the window — the deployment complexity the paper calls
out in Section 3.1.1.  This store makes that bookkeeping concrete and
measurable (migrations, per-pool occupancy, effective bytes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.kvcache.base import CapacityError, KVCacheStore, StoreStats
from repro.kvcache.paged import PagedStore


@dataclass
class _QSeq:
    length: int = 0
    fp16_tokens: int = 0
    quant_tokens: int = 0


class QuantizedPagedStore(KVCacheStore):
    """Two paged pools: quantized body + FP16 residual window."""

    def __init__(
        self,
        capacity_tokens: int,
        block_size: int = 16,
        residual_window: int = 128,
        group_size: int = 32,
        quant_bytes_per_token: float = 0.3125,
    ) -> None:
        if residual_window < group_size:
            raise ValueError("residual window must cover one quant group")
        # split capacity between pools by expected steady-state mix
        fp16_share = max(block_size, capacity_tokens // 4)
        self.fp16_pool = PagedStore(fp16_share, block_size)
        self.quant_pool = PagedStore(capacity_tokens - fp16_share, block_size)
        self.residual_window = residual_window
        self.group_size = group_size
        self.quant_bytes_per_token = quant_bytes_per_token
        self._seqs: Dict[str, _QSeq] = {}
        self.migrated_tokens = 0

    # ------------------------------------------------------------------
    def _migrate(self, seq_id: str) -> None:
        """Age full groups out of the FP16 window into the quant pool."""
        s = self._seqs[seq_id]
        over = s.fp16_tokens - self.residual_window
        groups = over // self.group_size
        if groups <= 0:
            return
        n = groups * self.group_size
        self.quant_pool.append(f"{seq_id}/q", n)
        evict_positions = list(range(n))  # oldest window slots
        self.fp16_pool.evict(f"{seq_id}/r", evict_positions)
        self.fp16_pool.compact_sequence(f"{seq_id}/r")
        s.fp16_tokens -= n
        s.quant_tokens += n
        self.migrated_tokens += n

    def add_sequence(self, seq_id: str, prompt_tokens: int) -> None:
        if seq_id in self._seqs:
            raise KeyError(f"sequence {seq_id!r} already present")
        self.fp16_pool.add_sequence(f"{seq_id}/r", prompt_tokens)
        self.quant_pool.add_sequence(f"{seq_id}/q", 1)
        self.quant_pool.evict(f"{seq_id}/q", [0])  # start empty
        self._seqs[seq_id] = _QSeq(
            length=prompt_tokens, fp16_tokens=prompt_tokens
        )
        self._migrate(seq_id)

    def append(self, seq_id: str, n_tokens: int = 1) -> None:
        s = self._seqs[seq_id]
        self.fp16_pool.append(f"{seq_id}/r", n_tokens)
        s.length += n_tokens
        s.fp16_tokens += n_tokens
        self._migrate(seq_id)

    def evict(self, seq_id: str, positions: List[int]) -> None:
        raise NotImplementedError(
            "window quantization does not evict tokens; combine with a "
            "sparse store for Q+S hybrids"
        )

    def free(self, seq_id: str) -> None:
        self._seqs.pop(seq_id)
        self.fp16_pool.free(f"{seq_id}/r")
        self.quant_pool.free(f"{seq_id}/q")

    def sequence_tokens(self, seq_id: str) -> int:
        s = self._seqs[seq_id]
        return s.fp16_tokens + s.quant_tokens

    def effective_bytes_per_token(self, seq_id: str) -> float:
        """Blended bytes/token (FP16 window vs quantized body), FP16=1."""
        s = self._seqs[seq_id]
        total = s.fp16_tokens + s.quant_tokens
        if total == 0:
            return 1.0
        return (
            s.fp16_tokens * 1.0 + s.quant_tokens * self.quant_bytes_per_token
        ) / total

    def stats(self) -> StoreStats:
        a = self.fp16_pool.stats()
        b = self.quant_pool.stats()
        return StoreStats(
            allocated_tokens=a.allocated_tokens + b.allocated_tokens,
            live_tokens=a.live_tokens + b.live_tokens,
            capacity_tokens=a.capacity_tokens + b.capacity_tokens,
            copied_tokens=a.copied_tokens + b.copied_tokens,
        )
