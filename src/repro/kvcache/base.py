"""Abstract interface of systems-level KV-cache stores.

These stores model how serving engines *manage* cache memory (the
metadata plane): sequence allocation, growth, eviction-driven shrinkage
and freeing.  The functional model's numeric cache lives separately in
:mod:`repro.model.cache`; the stores here answer the questions the
paper raises about management complexity — fragmentation, reallocation
copies, dual-pool bookkeeping for windowed quantization.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class StoreStats:
    """Occupancy snapshot of a cache store."""

    allocated_tokens: int    # tokens with storage reserved
    live_tokens: int         # tokens actually retained
    capacity_tokens: int     # total store capacity
    copied_tokens: int       # tokens moved by reallocation so far
    cached_tokens: int = 0   # unreferenced tokens retained for prefix reuse

    @property
    def internal_fragmentation(self) -> float:
        """Reserved-but-unused fraction of the allocation."""
        if self.allocated_tokens == 0:
            return 0.0
        return 1.0 - self.live_tokens / self.allocated_tokens

    @property
    def utilization(self) -> float:
        """Live fraction of total capacity."""
        if self.capacity_tokens == 0:
            return 0.0
        return self.live_tokens / self.capacity_tokens


class KVCacheStore(abc.ABC):
    """Management-plane interface shared by all stores."""

    @abc.abstractmethod
    def add_sequence(self, seq_id: str, prompt_tokens: int) -> None:
        """Reserve storage for a new sequence's prompt."""

    @abc.abstractmethod
    def append(self, seq_id: str, n_tokens: int = 1) -> None:
        """Extend a sequence by ``n_tokens`` decode tokens."""

    @abc.abstractmethod
    def evict(self, seq_id: str, positions: List[int]) -> None:
        """Mark positions of a sequence as evicted (sparsity)."""

    @abc.abstractmethod
    def free(self, seq_id: str) -> None:
        """Release all storage of a finished sequence."""

    @abc.abstractmethod
    def stats(self) -> StoreStats:
        """Current occupancy statistics."""

    @abc.abstractmethod
    def sequence_tokens(self, seq_id: str) -> int:
        """Live tokens currently stored for a sequence."""


class CapacityError(RuntimeError):
    """Raised when a store cannot satisfy an allocation."""
